// Trace records emitted by the simulation engine and protocols.
//
// Every scheduling-relevant transition is recorded so that (a) the trace
// renderer can reproduce Figure 5-1-style timelines and (b) invariant
// checkers can audit protocol rules after the fact (mutual exclusion,
// priority-ordered handoff, "gcs never preempted by non-cs code", ...).
#pragma once

#include <optional>
#include <ostream>
#include <vector>

#include "common/priority.h"
#include "common/types.h"

namespace mpcp {

enum class Ev {
  kRelease,     ///< job released (arrival)
  kStart,       ///< job dispatched on a processor
  kPreempt,     ///< job lost the processor while still ready
  kLockGrant,   ///< semaphore acquired (P succeeded)
  kLockWait,    ///< P failed: job blocked (local) or suspended (global)
  kUnlock,      ///< semaphore released (V), no waiter handoff
  kHandoff,     ///< V passed the semaphore directly to the head waiter
  kInherit,     ///< holder's inherited priority changed
  kGcsEnter,    ///< job's execution priority raised into the global band
  kGcsExit,     ///< job returned to its normal band
  kMigrate,     ///< DPCP: critical section moved to/from a sync processor
  kSelfSuspend, ///< job began a voluntary timed suspension
  kSelfResume,  ///< a voluntary suspension elapsed
  kFinish,      ///< job completed
  kDeadlineMiss,///< completion (or horizon) after the absolute deadline
  kFaultInjected,  ///< a FaultPlan spec first took effect (fault layer)
  kForcedRelease,  ///< watchdog revoked a stuck holder's semaphore
  kBudgetKill,     ///< budget-enforce aborted an overrunning gcs
  kJobAbort,       ///< job retired after a deadline miss (job-abort policy)
  kReleaseSkipped  ///< release suppressed (skip-next-release policy)
};

const char* toString(Ev ev);

/// One trace record. Unused fields stay invalid/empty.
struct TraceEvent {
  Time t = 0;
  Ev kind = Ev::kRelease;
  JobId job;
  ProcessorId processor;          ///< processor involved, if any
  ResourceId resource;            ///< semaphore involved, if any
  Priority priority;              ///< new priority for kInherit/kGcsEnter
  JobId other;                    ///< peer job (handoff target, blocker, ...)
};

std::ostream& operator<<(std::ostream& os, const TraceEvent& e);

/// Execution mode of a Gantt segment, for rendering and invariants.
enum class ExecMode {
  kNormal,   ///< outside any critical section
  kLocalCs,  ///< inside a local critical section
  kGcs,      ///< inside a global critical section (elevated band)
};

const char* toString(ExecMode m);

/// Contiguous run of one job on one processor — the raw material of a
/// Figure 5-1-style Gantt chart.
struct ExecSegment {
  ProcessorId processor;
  JobId job;
  Time begin = 0;
  Time end = 0;
  ExecMode mode = ExecMode::kNormal;
};

}  // namespace mpcp
