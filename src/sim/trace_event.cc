#include "sim/trace_event.h"

namespace mpcp {

const char* toString(Ev ev) {
  switch (ev) {
    case Ev::kRelease: return "release";
    case Ev::kStart: return "start";
    case Ev::kPreempt: return "preempt";
    case Ev::kLockGrant: return "lock-grant";
    case Ev::kLockWait: return "lock-wait";
    case Ev::kUnlock: return "unlock";
    case Ev::kHandoff: return "handoff";
    case Ev::kInherit: return "inherit";
    case Ev::kGcsEnter: return "gcs-enter";
    case Ev::kGcsExit: return "gcs-exit";
    case Ev::kMigrate: return "migrate";
    case Ev::kSelfSuspend: return "self-suspend";
    case Ev::kSelfResume: return "self-resume";
    case Ev::kFinish: return "finish";
    case Ev::kDeadlineMiss: return "DEADLINE-MISS";
    case Ev::kFaultInjected: return "fault-injected";
    case Ev::kForcedRelease: return "forced-release";
    case Ev::kBudgetKill: return "budget-kill";
    case Ev::kJobAbort: return "job-abort";
    case Ev::kReleaseSkipped: return "release-skipped";
  }
  return "?";
}

const char* toString(ExecMode m) {
  switch (m) {
    case ExecMode::kNormal: return "normal";
    case ExecMode::kLocalCs: return "local-cs";
    case ExecMode::kGcs: return "gcs";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const TraceEvent& e) {
  os << "t=" << e.t << " " << toString(e.kind) << " " << e.job;
  if (e.processor.valid()) os << " on " << e.processor;
  if (e.resource.valid()) os << " " << e.resource;
  if (e.priority != kPriorityFloor) os << " " << e.priority;
  if (e.other.task.valid()) os << " other=" << e.other;
  return os;
}

}  // namespace mpcp
