// Independent tick-stepped reference implementation of the spin
// protocols (spin-fifo / spin-prio) — the differential-testing oracle
// for Engine + SpinProtocol, in the same spirit as reference_mpcp:
//   * advances one tick at a time (no event queue, no settle cascade);
//   * derives the non-preemptive elevation declaratively every tick from
//     "spinning or holding" instead of maintaining it on events;
//   * a spinner is simply a candidate whose pending P() makes no
//     progress — it wins the processor by elevation and burns the tick,
//     the same way the mpcp reference models a stuck holder.
// Fault plans are NOT mirrored here; the differential oracle gates spin
// parity on fault-free runs.
#pragma once

#include "common/types.h"
#include "model/task_system.h"
#include "sim/reference_mpcp.h"

namespace mpcp {

/// Simulates `system` under spin rules for `horizon` ticks.
/// `priority_ordered` selects spin-prio's grant order (false = FIFO).
/// Nested critical sections are rejected exactly like SpinProtocol.
[[nodiscard]] ReferenceResult simulateSpinReference(const TaskSystem& system,
                                                    Time horizon,
                                                    bool priority_ordered);

}  // namespace mpcp
