#include "sim/reference_spin.h"

#include <algorithm>
#include <deque>
#include <map>

#include "common/check.h"
#include "common/strf.h"

namespace mpcp {

namespace {

struct SJob {
  JobId id;
  const Task* task = nullptr;
  Time release = 0;
  Time deadline = 0;
  std::size_t op = 0;       // index into body ops
  Duration done_in_op = 0;  // progress inside the current ComputeOp
  Time wake_at = -1;        // voluntary suspension end, -1 if none
  bool spinning = false;    // enqueued on a semaphore, burning its CPU
  bool finished = false;
  std::vector<ResourceId> held;
  std::uint64_t eligible_seq = 0;  // FCFS tie-break, stamped on eligibility
};

struct SpinSem {
  SJob* holder = nullptr;
  std::deque<SJob*> queue;  // arrival order; spin-prio scans by base prio
};

}  // namespace

ReferenceResult simulateSpinReference(const TaskSystem& sys, Time horizon,
                                      bool priority_ordered) {
  const int procs = sys.processorCount();

  // Same front-door contract as SpinProtocol: flat sections only.
  for (const Task& t : sys.tasks()) {
    for (const CriticalSection& cs : t.sections) {
      if (cs.parent < 0) continue;
      throw ConfigError(strf("spin reference: nested critical section in ",
                             t.name, " (", cs.resource, ")"));
    }
  }

  std::vector<Time> next_release(sys.tasks().size());
  std::vector<std::int64_t> instance(sys.tasks().size(), 0);
  for (const Task& t : sys.tasks()) {
    next_release[static_cast<std::size_t>(t.id.value())] = t.phase;
  }

  std::deque<SJob> jobs;  // stable addresses
  std::map<std::int32_t, SpinSem> sems;
  std::uint64_t seq = 0;

  ReferenceResult result;
  result.counters.init(sys.resources().size(),
                       static_cast<std::size_t>(procs), sys.tasks().size());

  const auto opsOf = [&](const SJob& j) -> const std::vector<Op>& {
    return j.task->body.ops();
  };

  // The non-preemptive band sits above every task priority; any distinct
  // value above them all orders identically, so the band base itself works
  // (the engine uses globalBase + max urgency + 1 — same order).
  const Priority np = Priority(1).inGlobalBand(sys.globalBase());
  const auto effective = [&](const SJob& j) {
    return (j.spinning || !j.held.empty()) ? np : j.task->priority;
  };

  // Grant to `next` consumes its pending P() right here, the way the
  // engine's handoff + re-run onLock lands within the same settle.
  const auto handoff = [&](SpinSem& g, ResourceId r, SJob* next) {
    g.holder = next;
    next->spinning = false;
    next->held.push_back(r);
    next->op++;
    result.counters.res(r).handoffs++;
    result.counters.res(r).acquisitions++;
    // No eligible_seq restamp: the engine never parked the spinner.
  };
  const auto popNext = [&](SpinSem& g) {
    auto best = g.queue.begin();
    if (priority_ordered) {
      for (auto it = g.queue.begin(); it != g.queue.end(); ++it) {
        if ((*it)->task->priority > (*best)->task->priority) best = it;
      }
    }
    SJob* next = *best;
    g.queue.erase(best);
    return next;
  };

  // Runs through `horizon` inclusive: the final iteration performs the
  // zero-time fixpoint only, mirroring the engine's final settle().
  for (Time now = 0; now <= horizon; ++now) {
    const bool final_instant = now == horizon;
    // 1. Releases.
    for (const Task& t : sys.tasks()) {
      const auto ti = static_cast<std::size_t>(t.id.value());
      auto& nr = next_release[ti];
      while (nr <= now && nr < horizon) {
        SJob j;
        j.id = JobId{t.id, instance[ti]++};
        j.task = &t;
        j.release = nr;
        j.deadline = nr + t.relative_deadline;
        j.eligible_seq = ++seq;
        jobs.push_back(j);
        nr += t.period;
      }
    }
    // 2. Voluntary wakes.
    for (SJob& j : jobs) {
      if (!j.finished && j.wake_at >= 0 && j.wake_at <= now) {
        j.wake_at = -1;
        j.eligible_seq = ++seq;
      }
    }

    // 3. Scheduling fixpoint: pick per-processor runners, draining
    //    zero-time ops until nothing changes — same pass structure as
    //    reference_mpcp (one pick + drain per processor per pass).
    std::vector<SJob*> runner(static_cast<std::size_t>(procs), nullptr);
    bool pass_changed = true;
    while (pass_changed) {
      pass_changed = false;
      for (int p = 0; p < procs; ++p) {
        std::vector<SJob*> candidates;
        for (SJob& j : jobs) {
          if (j.finished || j.wake_at >= 0) continue;
          if (j.task->processor.value() != p) continue;
          candidates.push_back(&j);  // spinners included: they burn the CPU
        }
        std::sort(candidates.begin(), candidates.end(),
                  [&](SJob* a, SJob* b) {
                    const Priority pa = effective(*a), pb = effective(*b);
                    if (pa != pb) return pa > pb;
                    return a->eligible_seq < b->eligible_seq;
                  });

        SJob* chosen = nullptr;
        bool mutated = false;
        for (SJob* j : candidates) {
          bool progressed = false;
          bool stop_candidate_scan = false;
          while (true) {
            const auto& ops = opsOf(*j);
            if (j->op >= ops.size()) {
              j->finished = true;
              result.jobs.push_back({j->id, j->release, now});
              if (now > j->deadline) result.any_deadline_miss = true;
              progressed = true;
              stop_candidate_scan = true;
              break;
            }
            if (std::get_if<ComputeOp>(&ops[j->op]) != nullptr) {
              if (!progressed) chosen = j;  // runnable as-is
              stop_candidate_scan = true;
              break;
            }
            if (const auto* susp = std::get_if<SuspendOp>(&ops[j->op])) {
              j->op++;
              j->wake_at = now + susp->duration;
              progressed = true;
              stop_candidate_scan = true;
              break;
            }
            if (const auto* l = std::get_if<LockOp>(&ops[j->op])) {
              if (j->spinning) {
                // Burning the processor while it waits, like the mpcp
                // reference's stuck holder: runnable-as-is, no progress.
                if (!progressed) chosen = j;
                stop_candidate_scan = true;
                break;
              }
              // Mirror the engine's V() scheduling point: if an earlier
              // op in this drain dropped our elevation, a higher-priority
              // job preempts before the next P().
              if (progressed) {
                bool preempted = false;
                for (SJob& o : jobs) {
                  if (&o == j || o.finished || o.wake_at >= 0) continue;
                  if (o.task->processor.value() != p) continue;
                  if (effective(o) > effective(*j)) {
                    preempted = true;
                    break;
                  }
                }
                if (preempted) {
                  stop_candidate_scan = true;
                  break;  // j stays eligible; the re-run pass dispatches
                }
              }
              SpinSem& g = sems[l->resource.value()];
              if (g.holder == nullptr) {
                g.holder = j;
                result.counters.res(l->resource).acquisitions++;
                j->held.push_back(l->resource);
                j->op++;
                progressed = true;
                continue;
              }
              g.queue.push_back(j);
              result.counters.res(l->resource).contended_waits++;
              j->spinning = true;  // now elevated; burns from next pass on
              progressed = true;
              stop_candidate_scan = true;
              break;
            }
            if (const auto* u = std::get_if<UnlockOp>(&ops[j->op])) {
              MPCP_CHECK(!j->held.empty() && j->held.back() == u->resource,
                         "spin reference: unlock order violated");
              SpinSem& g = sems[u->resource.value()];
              MPCP_CHECK(g.holder == j, "spin reference: non-holder unlock");
              j->held.pop_back();
              j->op++;
              if (g.queue.empty()) {
                g.holder = nullptr;
              } else {
                handoff(g, u->resource, popNext(g));
              }
              progressed = true;
              continue;
            }
          }
          if (progressed) mutated = true;
          if (stop_candidate_scan || mutated) break;
        }
        if (mutated) {
          pass_changed = true;
          runner[static_cast<std::size_t>(p)] = nullptr;  // re-pick later
        } else {
          runner[static_cast<std::size_t>(p)] = chosen;
        }
      }
    }

    // 4. Deadline overrun visibility (parity with the engine's policy).
    for (SJob& j : jobs) {
      if (!j.finished && now > j.deadline) result.any_deadline_miss = true;
    }

    // 5. Execute one tick per processor. A chosen spinner sits at its
    //    LockOp and makes no progress — the tick burns, as intended.
    if (final_instant) break;
    for (int p = 0; p < procs; ++p) {
      SJob* j = runner[static_cast<std::size_t>(p)];
      if (j == nullptr) continue;
      const auto& ops = opsOf(*j);
      if (const auto* c = std::get_if<ComputeOp>(&ops[j->op])) {
        if (++j->done_in_op >= c->duration) {
          j->op++;
          j->done_in_op = 0;
        }
      }
    }
  }

  // Jobs still unfinished after the final fixpoint are censored.
  for (SJob& j : jobs) {
    if (j.finished) continue;
    result.jobs.push_back({j.id, j.release, -1});
    if (j.deadline <= horizon) result.any_deadline_miss = true;
  }

  std::sort(result.jobs.begin(), result.jobs.end(),
            [](const ReferenceJobResult& a, const ReferenceJobResult& b) {
              if (a.id.task != b.id.task) return a.id.task < b.id.task;
              return a.id.instance < b.id.instance;
            });
  return result;
}

}  // namespace mpcp
