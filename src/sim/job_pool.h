// Slot-indexed pool of in-flight jobs + the engine's hot-state arrays.
//
// Storage is a chunked slab (stable addresses — protocols and ready
// queues hold Job*) with a free list, so a finished job's slot (and its
// `held` vector's capacity) is recycled by the next release. configure()
// pre-creates the expected number of slots so steady-state
// allocate()/release() performs no heap allocation at all.
//
// Hot state is structure-of-arrays, keyed by slot: the engine's
// per-event accounting walk (waiting-time attribution over every live
// job) reads `phase / proc / base priority` and bumps one of three
// wait accumulators — with the old Job-object layout that walk chased a
// pointer per job and dragged whole ~250-byte Job structs through the
// cache; here it streams a few contiguous arrays. The engine mirrors
// job state into these arrays at every transition; Job remains the
// authoritative record protocols see.
//
// Live-set indexes:
//   * an intrusive doubly-linked live list in *release order* — the
//     engine's sweeps (waiting-time attribution, horizon flush) must see
//     jobs in exactly the order the old std::list iterated, or traces
//     and result rows would reorder;
//   * per-task live-slot vectors (release order within the task) —
//     find() scans the handful of live instances of one task instead of
//     hashing, and the overrun check walks exactly one task's instances.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/job.h"

namespace mpcp {

class JobPool {
 public:
  static constexpr std::size_t kChunkSize = 128;

  /// Run phase mirrored from Job::state (+ the suspended/blocked split
  /// of kWaiting) — the only discriminant the accounting walk needs.
  enum class Phase : std::uint8_t { kReady = 0, kBlocked = 1, kSuspended = 2 };

  /// Per-slot waiting-time accumulators (moved out of Job; maintained
  /// lazily — see WaitClass).
  struct Waits {
    Duration blocked = 0;    ///< priority-inversion waiting (toward B_i)
    Duration preempted = 0;  ///< behind higher-assigned-priority work
    Duration suspended = 0;  ///< voluntary self-suspension
  };

  /// Which accumulator a job's elapsing time belongs to *right now*. The
  /// engine keeps (class, mark-time) per slot and flushes `now - mark`
  /// into the class's accumulator only when the class changes — a job's
  /// classification is piecewise constant between state transitions, so
  /// the flushed sums are identical to per-advance accrual, without the
  /// O(live) walk per clock advance.
  enum class WaitClass : std::uint8_t {
    kRun = 0,        ///< dispatched: accrues nothing here
    kBlocked = 1,    ///< Waits::blocked
    kPreempted = 2,  ///< Waits::preempted
    kSuspended = 3,  ///< Waits::suspended
  };

  /// Sizes every internal structure for a run: pre-creates `expected_slots`
  /// job slots (each with `held_capacity` reserved), sizes the per-task
  /// index for `n_tasks` tasks and reserves `per_task_reserve` live slots
  /// per task. Steady-state allocate()/release() then never allocates
  /// (allocation-order growth remains as a fallback if a run exceeds the
  /// estimate). Must be called before the first allocate().
  void configure(std::size_t n_tasks, std::size_t expected_slots,
                 std::size_t held_capacity, std::size_t per_task_reserve) {
    MPCP_CHECK(size_ == 0, "JobPool::configure() on a used pool");
    held_capacity_ = held_capacity;
    if (task_slots_.size() < n_tasks) task_slots_.resize(n_tasks);
    for (auto& v : task_slots_) v.reserve(per_task_reserve);
    while (size_ < expected_slots) {
      const auto slot = static_cast<std::uint32_t>(size_);
      if (slot / kChunkSize == chunks_.size()) {
        chunks_.push_back(std::make_unique<Job[]>(kChunkSize));
        growSoa();
      }
      at(slot).held.reserve(held_capacity_);
      ++size_;
    }
    // The free list pops from the back: fill it descending so jobs claim
    // slot 0 first, matching the grow-in-order path.
    free_.reserve(size_);
    for (std::size_t s = size_; s > 0; --s) {
      free_.push_back(static_cast<std::uint32_t>(s - 1));
    }
  }

  /// Returns a freshly reset Job with stable address, registered under
  /// `id`. The job's pool_slot is filled in; `held` keeps any recycled
  /// capacity but is empty. The engine stamps proc/base right after.
  Job& allocate(JobId id) {
    MPCP_CHECK(id.task.valid(), "JobPool: job with invalid task id");
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(size_);
      if (slot / kChunkSize == chunks_.size()) {
        chunks_.push_back(std::make_unique<Job[]>(kChunkSize));
        growSoa();
      }
      ++size_;
    }
    Job& j = at(slot);
    // Reset in place, keeping the held vector's capacity across reuse.
    std::vector<ResourceId> held = std::move(j.held);
    held.clear();
    j = Job{};
    j.held = std::move(held);
    if (j.held.capacity() < held_capacity_) j.held.reserve(held_capacity_);
    j.id = id;
    j.pool_slot = slot;

    // Register before linking: a duplicate id must throw without leaving
    // a half-linked orphan in the live list (the slot itself is leaked,
    // which is fine — the check signals a fatal engine bug).
    const auto t = static_cast<std::size_t>(id.task.value());
    if (t >= task_slots_.size()) task_slots_.resize(t + 1);
    auto& slots = task_slots_[t];
    for (const std::uint32_t s : slots) {
      MPCP_CHECK(at(s).id.instance != id.instance,
                 "JobPool: duplicate live job " << id);
    }
    slots.push_back(slot);

    // Append to the live list (release order).
    live_prev_[slot] = tail_;
    live_next_[slot] = -1;
    if (tail_ >= 0) {
      live_next_[static_cast<std::size_t>(tail_)] =
          static_cast<std::int32_t>(slot);
    } else {
      head_ = static_cast<std::int32_t>(slot);
    }
    tail_ = static_cast<std::int32_t>(slot);
    ++live_;

    phase_[slot] = Phase::kReady;
    waits_[slot] = {};
    wait_cls_[slot] = WaitClass::kRun;
    wait_mark_[slot] = 0;  // engine stamps the release time right after
    return j;
  }

  /// Unlinks a finished job and recycles its slot.
  void release(Job& j) {
    MPCP_CHECK(j.pool_slot < size_ && &at(j.pool_slot) == &j,
               "JobPool::release: foreign job " << j.id);
    const auto t = static_cast<std::size_t>(j.id.task.value());
    MPCP_CHECK(t < task_slots_.size(), "JobPool::release: job " << j.id
                                                                << " not live");
    auto& slots = task_slots_[t];
    const auto it = std::find(slots.begin(), slots.end(), j.pool_slot);
    MPCP_CHECK(it != slots.end(),
               "JobPool::release: job " << j.id << " not live");
    slots.erase(it);  // preserves release order among remaining instances

    const std::uint32_t slot = j.pool_slot;
    if (live_prev_[slot] >= 0) {
      live_next_[static_cast<std::size_t>(live_prev_[slot])] =
          live_next_[slot];
    } else {
      head_ = live_next_[slot];
    }
    if (live_next_[slot] >= 0) {
      live_prev_[static_cast<std::size_t>(live_next_[slot])] =
          live_prev_[slot];
    } else {
      tail_ = live_prev_[slot];
    }
    live_prev_[slot] = live_next_[slot] = -1;

    free_.push_back(slot);
    --live_;
  }

  /// Lookup of a live job — scans the job's task's live instances (a
  /// handful at most; no hashing). nullptr if the id is not live.
  [[nodiscard]] Job* find(JobId id) {
    if (!id.task.valid()) return nullptr;
    const auto t = static_cast<std::size_t>(id.task.value());
    if (t >= task_slots_.size()) return nullptr;
    for (const std::uint32_t s : task_slots_[t]) {
      Job& j = at(s);
      if (j.id.instance == id.instance) return &j;
    }
    return nullptr;
  }

  /// Slot a live job occupies (tests assert lookup stability).
  [[nodiscard]] std::uint32_t slotOf(const Job& j) const {
    return j.pool_slot;
  }

  [[nodiscard]] std::size_t liveCount() const { return live_; }
  [[nodiscard]] std::size_t capacity() const { return size_; }

  /// Visits every live job in release order. `fn` must not allocate or
  /// release pool jobs, but may mutate the visited job.
  template <typename Fn>
  void forEachLive(Fn&& fn) {
    for (std::int32_t s = head_; s >= 0;) {
      const std::int32_t next = live_next_[static_cast<std::size_t>(s)];
      fn(at(static_cast<std::uint32_t>(s)));
      s = next;  // read before fn in case fn released the visited job
    }
  }

  // ----- slot-indexed hot state (engine accounting paths) -----

  [[nodiscard]] Job& jobAt(std::uint32_t slot) { return at(slot); }
  [[nodiscard]] std::int32_t liveHead() const { return head_; }
  [[nodiscard]] std::int32_t liveNext(std::int32_t slot) const {
    return live_next_[static_cast<std::size_t>(slot)];
  }

  [[nodiscard]] Phase phase(std::uint32_t slot) const { return phase_[slot]; }
  void setPhase(std::uint32_t slot, Phase p) { phase_[slot] = p; }
  [[nodiscard]] std::int32_t procOf(std::uint32_t slot) const {
    return proc_[slot];
  }
  void setProc(std::uint32_t slot, std::int32_t proc) { proc_[slot] = proc; }
  [[nodiscard]] std::int32_t baseOf(std::uint32_t slot) const {
    return base_[slot];
  }
  void setBase(std::uint32_t slot, std::int32_t urgency) {
    base_[slot] = urgency;
  }
  [[nodiscard]] Waits& waits(std::uint32_t slot) { return waits_[slot]; }
  [[nodiscard]] const Waits& waits(std::uint32_t slot) const {
    return waits_[slot];
  }
  [[nodiscard]] WaitClass waitClass(std::uint32_t slot) const {
    return wait_cls_[slot];
  }
  void setWaitClass(std::uint32_t slot, WaitClass c) { wait_cls_[slot] = c; }
  [[nodiscard]] Time waitMark(std::uint32_t slot) const {
    return wait_mark_[slot];
  }
  void setWaitMark(std::uint32_t slot, Time t) { wait_mark_[slot] = t; }

  /// Live slots of one task, in release order (overrun sweeps).
  [[nodiscard]] const std::vector<std::uint32_t>& taskSlots(
      std::size_t task) const {
    return task_slots_[task];
  }
  [[nodiscard]] std::size_t taskCount() const { return task_slots_.size(); }

 private:
  [[nodiscard]] Job& at(std::uint32_t slot) {
    return chunks_[slot / kChunkSize][slot % kChunkSize];
  }
  [[nodiscard]] const Job& at(std::uint32_t slot) const {
    return chunks_[slot / kChunkSize][slot % kChunkSize];
  }

  /// Keeps every SoA array sized to the slab capacity (chunk granular).
  void growSoa() {
    const std::size_t cap = chunks_.size() * kChunkSize;
    phase_.resize(cap, Phase::kReady);
    proc_.resize(cap, -1);
    base_.resize(cap, 0);
    waits_.resize(cap);
    wait_cls_.resize(cap, WaitClass::kRun);
    wait_mark_.resize(cap, 0);
    live_prev_.resize(cap, -1);
    live_next_.resize(cap, -1);
  }

  std::vector<std::unique_ptr<Job[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::vector<std::vector<std::uint32_t>> task_slots_;  // per task, live
  std::size_t held_capacity_ = 0;
  std::size_t size_ = 0;   // slots ever created
  std::size_t live_ = 0;
  std::int32_t head_ = -1;
  std::int32_t tail_ = -1;

  // Parallel slot-indexed arrays (see class comment).
  std::vector<Phase> phase_;
  std::vector<std::int32_t> proc_;
  std::vector<std::int32_t> base_;
  std::vector<Waits> waits_;
  std::vector<WaitClass> wait_cls_;
  std::vector<Time> wait_mark_;
  std::vector<std::int32_t> live_prev_;
  std::vector<std::int32_t> live_next_;
};

}  // namespace mpcp
