// Slot-indexed pool of in-flight jobs.
//
// The engine's old job store was a std::list<Job>: one heap allocation
// per released job, O(live) walks to find a job by id, and O(live) erase
// on completion. The pool replaces it with
//   * chunked slab storage — addresses are stable for the pool's lifetime
//     (protocols and ready queues hold Job*), no per-job allocation after
//     a chunk fills;
//   * a free list — a finished job's slot (and its `held` vector's
//     capacity) is recycled by the next release;
//   * an id index — JobId -> slot hash map, so findJob is O(1);
//   * an intrusive doubly-linked live list in *release order* — the
//     engine's accounting sweeps (waiting-time attribution, overrun
//     checks, horizon flush) must see jobs in exactly the order the old
//     list iterated, or traces and result rows would reorder.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "sim/job.h"

namespace mpcp {

class JobPool {
 public:
  static constexpr std::size_t kChunkSize = 128;

  /// Returns a freshly reset Job with stable address, registered under
  /// `id`. The job's pool_slot is filled in; `held` keeps any recycled
  /// capacity but is empty.
  Job& allocate(JobId id) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(size_);
      if (slot / kChunkSize == chunks_.size()) {
        chunks_.push_back(std::make_unique<Job[]>(kChunkSize));
      }
      ++size_;
    }
    Job& j = at(slot);
    // Reset in place, keeping the held vector's capacity across reuse.
    std::vector<ResourceId> held = std::move(j.held);
    held.clear();
    j = Job{};
    j.held = std::move(held);
    j.id = id;
    j.pool_slot = slot;

    // Register before linking: a duplicate id must throw without leaving
    // a half-linked orphan in the live list (the slot itself is leaked,
    // which is fine — the check signals a fatal engine bug).
    const bool inserted = index_.emplace(id, slot).second;
    MPCP_CHECK(inserted, "JobPool: duplicate live job " << id);

    // Append to the live list (release order).
    j.live_prev = tail_;
    j.live_next = -1;
    if (tail_ >= 0) {
      at(static_cast<std::uint32_t>(tail_)).live_next =
          static_cast<std::int32_t>(slot);
    } else {
      head_ = static_cast<std::int32_t>(slot);
    }
    tail_ = static_cast<std::int32_t>(slot);
    ++live_;
    return j;
  }

  /// Unlinks a finished job and recycles its slot.
  void release(Job& j) {
    MPCP_CHECK(&at(j.pool_slot) == &j,
               "JobPool::release: foreign job " << j.id);
    const auto it = index_.find(j.id);
    MPCP_CHECK(it != index_.end() && it->second == j.pool_slot,
               "JobPool::release: job " << j.id << " not live");
    index_.erase(it);

    if (j.live_prev >= 0) {
      at(static_cast<std::uint32_t>(j.live_prev)).live_next = j.live_next;
    } else {
      head_ = j.live_next;
    }
    if (j.live_next >= 0) {
      at(static_cast<std::uint32_t>(j.live_next)).live_prev = j.live_prev;
    } else {
      tail_ = j.live_prev;
    }
    j.live_prev = j.live_next = -1;

    free_.push_back(j.pool_slot);
    --live_;
  }

  /// O(1) lookup of a live job; nullptr if the id is not live.
  [[nodiscard]] Job* find(JobId id) {
    const auto it = index_.find(id);
    return it == index_.end() ? nullptr : &at(it->second);
  }

  /// Slot a live job occupies (tests assert lookup stability).
  [[nodiscard]] std::uint32_t slotOf(const Job& j) const {
    return j.pool_slot;
  }

  [[nodiscard]] std::size_t liveCount() const { return live_; }
  [[nodiscard]] std::size_t capacity() const { return size_; }

  /// Visits every live job in release order. `fn` must not allocate or
  /// release pool jobs, but may mutate the visited job.
  template <typename Fn>
  void forEachLive(Fn&& fn) {
    for (std::int32_t s = head_; s >= 0;) {
      Job& j = at(static_cast<std::uint32_t>(s));
      s = j.live_next;  // read before fn in case fn parks/retires j
      fn(j);
    }
  }

 private:
  [[nodiscard]] Job& at(std::uint32_t slot) {
    return chunks_[slot / kChunkSize][slot % kChunkSize];
  }
  [[nodiscard]] const Job& at(std::uint32_t slot) const {
    return chunks_[slot / kChunkSize][slot % kChunkSize];
  }

  std::vector<std::unique_ptr<Job[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<JobId, std::uint32_t> index_;
  std::size_t size_ = 0;   // slots ever created
  std::size_t live_ = 0;
  std::int32_t head_ = -1;
  std::int32_t tail_ = -1;
};

}  // namespace mpcp
