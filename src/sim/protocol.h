// SyncProtocol: the seam between the engine and a synchronization
// protocol.
//
// The engine owns releases, dispatching, preemption, compute progression
// and deadline accounting; a protocol decides what P() and V() do — grant,
// block, suspend, queue, hand off, inherit, elevate. All five protocols
// (none / PIP / PCP / MPCP / DPCP) implement this interface, so every
// experiment swaps protocols without touching the workload.
//
// Contract for onLock: it is invoked when a *dispatched* job reaches a
// LockOp, and must either
//   * return kGranted  — the job now holds the semaphore (the engine pushes
//     it onto job.held and advances the op cursor); the call must be
//     idempotent for a job that was already granted the semaphore while
//     waiting in a queue (hand-off), or
//   * return kWaiting  — the protocol has parked the job via
//     Engine::parkWaiting(), so it is no longer eligible; when the protocol
//     later wakes the job, the engine re-runs onLock at dispatch, or
//   * return kSpinning — the protocol has marked the job as busy-waiting
//     via Engine::parkSpinning(): the job stays kReady, keeps its
//     processor (the protocol must elevate it into a non-preemptive
//     band), and makes no op progress until the holder's onUnlock calls
//     Engine::noteSpinGranted() on it; the engine then re-runs onLock,
//     which must observe the hand-off and return kGranted. Repeated
//     onLock calls while the job is still spinning must idempotently
//     return kSpinning.
// This wake-and-retry design lets PCP re-evaluate its ceiling test after
// every local unlock, while queue-based protocols (MPCP/DPCP/PIP/none)
// simply leave the job parked until they hand the semaphore to it and
// spin protocols (spin-fifo/spin-prio) burn the waiter's processor
// without ever suspending.
#pragma once

#include "common/types.h"
#include "sim/job.h"

namespace mpcp {

class Engine;

enum class LockOutcome { kGranted, kWaiting, kSpinning };

class SyncProtocol {
 public:
  virtual ~SyncProtocol() = default;

  /// Called once before the simulation starts.
  virtual void attach(Engine& engine) { engine_ = &engine; }

  /// P(S) for the dispatched job `j`. See the contract above.
  virtual LockOutcome onLock(Job& j, ResourceId r) = 0;

  /// V(S). Must wake / hand off to waiters as the protocol prescribes and
  /// restore the releasing job's priority components.
  virtual void onUnlock(Job& j, ResourceId r) = 0;

  virtual void onJobReleased(Job& /*j*/) {}
  virtual void onJobFinished(Job& /*j*/) {}

  [[nodiscard]] virtual const char* name() const = 0;

 protected:
  Engine* engine_ = nullptr;
};

}  // namespace mpcp
