// Independent tick-stepped reference implementation of the shared-memory
// protocol — the differential-testing oracle for the event-driven engine.
//
// Deliberately structured as differently as possible from Engine +
// MpcpProtocol so mechanical bugs cannot hide in both:
//   * advances one tick at a time (no event queue, no settle cascade);
//   * recomputes PCP inheritance declaratively from scratch every tick
//     instead of maintaining it incrementally on events;
//   * evaluates the ceiling test at selection time rather than parking
//     and waking blocked jobs.
// Only the *rules* (Section 5's protocol) are shared, which is exactly
// what a differential test should hold constant.
//
// O(horizon x jobs) instead of the engine's event-driven complexity, so
// use it on small horizons.
#pragma once

#include <vector>

#include "common/types.h"
#include "fault/plan.h"
#include "model/task_system.h"
#include "obs/counters.h"

namespace mpcp {

struct ReferenceJobResult {
  JobId id;
  Time release = 0;
  Time finish = -1;  ///< -1: unfinished at the horizon
};

struct ReferenceResult {
  std::vector<ReferenceJobResult> jobs;  ///< release order per task
  bool any_deadline_miss = false;
  /// Lock-path counters bumped at the same semantic sites as the engine
  /// (grant, park, handoff), so acquisition/wait/handoff totals are
  /// directly comparable across the two implementations.
  obs::Counters counters;
};

/// Simulates `system` under MPCP rules for `horizon` ticks.
/// Supports the full op set (compute/lock/unlock/suspend); requires
/// non-nested global sections like MpcpProtocol.
///
/// `plan` (optional, not owned) mirrors the engine's fault injection for
/// the mirrorable fault classes (WCET/cs overrun, stuck holder, release
/// jitter — NOT processor stalls; see FaultPlan::mirrorable()), so
/// differential oracles stay meaningful under injected faults.
/// `holder_watchdog` > 0 force-releases a global semaphore whose holder
/// has kept it that long, handing off to the highest-priority waiter —
/// the reference half of the engine's watchdog containment policy.
[[nodiscard]] ReferenceResult simulateMpcpReference(
    const TaskSystem& system, Time horizon,
    const fault::FaultPlan* plan = nullptr, Duration holder_watchdog = 0);

}  // namespace mpcp
