// Simulation outputs: per-job records, per-task aggregates, the full
// event trace and the execution segments (Gantt raw data).
#pragma once

#include <vector>

#include "common/types.h"
#include "obs/counters.h"
#include "sim/trace_event.h"

namespace mpcp {

/// Outcome of one job.
struct JobRecord {
  JobId id;
  Time release = 0;
  Time abs_deadline = 0;
  Time finish = -1;           ///< -1: still unfinished at horizon
  Duration executed = 0;
  Duration blocked = 0;       ///< measured priority-inversion time
  Duration preempted = 0;
  Duration suspended = 0;     ///< voluntary self-suspension time
  bool missed = false;
  bool aborted = false;       ///< retired by the job-abort policy

  [[nodiscard]] Duration responseTime() const {
    return finish < 0 ? -1 : finish - release;
  }
};

/// Aggregates over all completed jobs of one task.
struct TaskStats {
  TaskId task;
  std::int64_t jobs_released = 0;
  std::int64_t jobs_finished = 0;
  std::int64_t deadline_misses = 0;
  Duration max_response = 0;    ///< over finished jobs
  Duration max_blocked = 0;     ///< worst observed priority-inversion time
  double avg_response = 0.0;
};

struct SimResult {
  Time horizon = 0;
  bool any_deadline_miss = false;
  /// Busy ticks per processor (any job, any mode) — e.g. to gauge the
  /// agent load DPCP concentrates on synchronization processors.
  std::vector<Duration> processor_busy;
  std::vector<JobRecord> jobs;        ///< completion order, then leftovers
  std::vector<TaskStats> per_task;    ///< indexed by TaskId
  std::vector<TraceEvent> trace;      ///< empty unless SimConfig::record_trace
  std::vector<ExecSegment> segments;  ///< empty unless SimConfig::record_trace
  /// Always-on runtime counters (independent of record_trace); cheap
  /// uint64_t bumps that never perturb the schedule. See obs/counters.h.
  obs::Counters counters;
};

}  // namespace mpcp
