// Runtime job state inside the simulation engine.
//
// Split layout (hot-path restructuring): the fields the engine's
// per-event accounting loop reads for *every* live job — run phase,
// current processor, assigned priority, waiting-time accumulators — live
// in the JobPool's slot-indexed parallel arrays (see job_pool.h), not
// here. The Job struct keeps everything touched only for the few
// dispatched/transitioning jobs per event. The engine mirrors `state`,
// `current` and `base` into the pool arrays at every transition;
// protocols keep mutating the Job fields exactly as before.
#pragma once

#include <cstdint>
#include <vector>

#include "common/priority.h"
#include "common/types.h"
#include "model/body.h"

namespace mpcp {

enum class JobState {
  kReady,     ///< eligible for dispatch on `current` processor
  kWaiting,   ///< blocked on a local semaphore or suspended on a global one
  kFinished,
};

/// One in-flight task instance. Owned by the Engine; protocols mutate the
/// priority fields and (via Engine services) the state.
struct Job {
  JobId id;
  ProcessorId host;     ///< static binding (Section 3.2)
  ProcessorId current;  ///< == host except while a DPCP gcs runs remotely

  Time release = 0;
  Time abs_deadline = 0;

  // --- execution cursor ---
  std::size_t op_index = 0;
  /// Remaining ticks of the current ComputeOp; -1 = not yet entered.
  Duration op_remaining = -1;
  /// The task body's op array, cached at release so the op-consumption
  /// loop skips the TaskSystem::task() indirection per op.
  const Op* ops = nullptr;
  std::size_t op_count = 0;
  /// Stack of currently held resources (LIFO by construction).
  std::vector<ResourceId> held;

  JobState state = JobState::kReady;
  /// Semaphore this job is waiting for when state == kWaiting.
  ResourceId waiting_for;
  /// Busy-waiting on `waiting_for` (spin protocols): the job is kReady
  /// and occupies its processor but makes no op progress; the wait is
  /// accounted as blocking. Set/cleared only via Engine::parkSpinning /
  /// Engine::noteSpinGranted.
  bool spinning = false;
  /// End of the current voluntary suspension; -1 when not self-suspended.
  /// A kWaiting job with suspended_until >= 0 is voluntarily suspended,
  /// not blocked.
  Time suspended_until = -1;

  // --- priority components (Section 4/5 structure) ---
  Priority base;                           ///< assigned task priority
  Priority inherited = kPriorityFloor;     ///< PIP/PCP inheritance
  Priority elevated = kPriorityFloor;      ///< gcs-band priority when in a gcs

  /// Dispatch key: the job runs at the highest applicable priority.
  [[nodiscard]] Priority effectivePriority() const {
    Priority p = base;
    if (inherited > p) p = inherited;
    if (elevated > p) p = elevated;
    return p;
  }

  /// FCFS tie-break among equal priorities: lower seq = queued earlier.
  std::uint64_t ready_seq = 0;

  // --- accounting ---
  // blocked/preempted/suspended accumulators live in the JobPool's SoA
  // arrays (bumped for every live job per advance; see JobPool::Waits).
  Duration executed = 0;        ///< ticks actually run
  Time finish = -1;             ///< completion time, -1 while in flight
  bool miss_noted = false;      ///< deadline-miss trace event already emitted

  // --- fault-injection / containment state (engine-internal; all inert
  // unless the run has a FaultPlan or an active ContainmentConfig) ---
  /// budget-enforce allowance for the current gcs; -1 = not armed.
  Duration gcs_budget = -1;
  Duration gcs_consumed = 0;    ///< ticks executed since entering that gcs
  ResourceId gcs_resource;      ///< semaphore the armed budget belongs to
  std::size_t gcs_unlock_index = 0;  ///< op index of its matching V()
  /// Semaphores the watchdog revoked from this job: the corresponding
  /// pending UnlockOps are consumed as no-ops when reached.
  std::vector<ResourceId> force_released;
  std::uint32_t faults_noted = 0;    ///< fault::bitOf mask already recorded
  bool wcet_delta_applied = false;   ///< one-shot WCET delta consumed
  bool abort_pending = false;        ///< retire at next safe point
  bool miss_policy_applied = false;  ///< on-miss containment already decided

  // --- JobPool bookkeeping (engine-internal; protocols must not touch) ---
  std::uint32_t pool_slot = 0;  ///< slab slot this job occupies
};

}  // namespace mpcp
