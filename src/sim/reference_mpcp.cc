#include "sim/reference_mpcp.h"

#include <algorithm>
#include <deque>
#include <map>

#include "analysis/ceilings.h"
#include "common/check.h"

namespace mpcp {

namespace {

struct RJob {
  JobId id;
  const Task* task = nullptr;
  Time release = 0;
  Time deadline = 0;
  std::size_t op = 0;           // index into body ops
  Duration done_in_op = 0;      // progress inside the current ComputeOp
  Time wake_at = -1;            // voluntary suspension end, -1 if none
  bool waiting_global = false;  // parked in some global semaphore queue
  bool parked_local = false;    // ceiling-blocked on a local semaphore
  bool finished = false;
  std::vector<ResourceId> held;
  std::uint64_t eligible_seq = 0;  // FCFS tie-break, stamped on eligibility
  // Fault mirroring (inert without a plan/watchdog):
  Duration cur_len = -1;             // injected length of the current compute
  bool wcet_delta_applied = false;   // one-shot WCET delta consumed
  std::uint32_t faults_noted = 0;    // fault::bitOf mask already counted
  std::vector<ResourceId> force_released;  // revoked; pending V()s are no-ops
};

struct GlobalSem {
  RJob* holder = nullptr;
  std::deque<RJob*> queue;  // arrival order; selection scans by priority
  Time since = -1;          // last holder transition (watchdog clock)
};

}  // namespace

ReferenceResult simulateMpcpReference(const TaskSystem& sys, Time horizon,
                                      const fault::FaultPlan* plan,
                                      Duration holder_watchdog) {
  const PriorityTables tables(sys);
  const int procs = sys.processorCount();
  if (plan != nullptr && plan->empty()) plan = nullptr;
  if (plan != nullptr) plan->validate(sys);

  std::vector<Time> next_release(sys.tasks().size());
  std::vector<std::int64_t> instance(sys.tasks().size(), 0);
  // Deferred (jittered) releases: at most one outstanding per task since
  // jitter is clamped below the period.
  std::vector<Time> jit_at(sys.tasks().size(), -1);
  std::vector<Time> jit_nominal(sys.tasks().size(), 0);
  for (const Task& t : sys.tasks()) {
    next_release[static_cast<std::size_t>(t.id.value())] = t.phase;
  }

  std::deque<RJob> jobs;  // stable addresses
  std::map<std::int32_t, GlobalSem> globals;
  std::uint64_t seq = 0;
  // Jobs whose local lock attempt was ceiling-blocked, per processor, in
  // attempt order. The engine parks these out of the ready queue and
  // re-wakes them (with a *fresh* arrival stamp) on the next local unlock
  // on that processor; mirroring both halves keeps same-priority FIFO
  // tie-breaks — a woken waiter vs a job released at the same instant —
  // bit-identical to the engine.
  std::vector<std::vector<RJob*>> parked_local_q(
      static_cast<std::size_t>(procs));

  ReferenceResult result;
  result.counters.init(sys.resources().size(),
                       static_cast<std::size_t>(procs), sys.tasks().size());

  // ---- helpers over the mutable state ---------------------------------
  const auto opsOf = [&](const RJob& j) -> const std::vector<Op>& {
    return j.task->body.ops();
  };
  // Locally-held local semaphores per processor: derived fresh on demand.
  const auto localHolders = [&](int p) {
    std::vector<std::pair<ResourceId, RJob*>> held;
    for (RJob& j : jobs) {
      if (j.finished || j.task->processor.value() != p) continue;
      for (ResourceId r : j.held) {
        if (!sys.isGlobal(r)) held.emplace_back(r, &j);
      }
    }
    return held;
  };

  // Effective priority: base, PCP inheritance (computed by caller via the
  // blocked-map), gcs elevation from held globals.
  const auto elevationOf = [&](const RJob& j) {
    Priority e = kPriorityFloor;
    for (ResourceId r : j.held) {
      if (sys.isGlobal(r)) {
        e = std::max(e, tables.gcsPriority(r, j.task->processor));
      }
    }
    return e;
  };

  // Counts one injection per fault kind per job, like the engine.
  const auto noteFault = [&](RJob& j, fault::FaultKind kind) {
    const std::uint32_t bit = fault::bitOf(kind);
    if ((j.faults_noted & bit) != 0) return;
    j.faults_noted |= bit;
    result.counters.faults_injected++;
  };
  // Applies the plan to a compute op about to start.
  const auto refComputeLen = [&](RJob& j, Duration base) {
    const ResourceId inner = j.held.empty() ? ResourceId{} : j.held.back();
    const fault::ComputeEffect eff = plan->computeEffect(
        j.id.task, j.id.instance, base, inner, !j.wcet_delta_applied);
    if (eff.delta_used) j.wcet_delta_applied = true;
    if ((eff.kinds & fault::bitOf(fault::FaultKind::kWcetOverrun)) != 0) {
      noteFault(j, fault::FaultKind::kWcetOverrun);
    }
    if ((eff.kinds & fault::bitOf(fault::FaultKind::kCsOverrun)) != 0) {
      noteFault(j, fault::FaultKind::kCsOverrun);
    }
    return eff.duration;
  };

  // Runs through `horizon` inclusive: the final iteration performs the
  // zero-time fixpoint only (no execution), mirroring the engine's
  // final settle() so completions landing exactly on the horizon count.
  for (Time now = 0; now <= horizon; ++now) {
    const bool final_instant = now == horizon;
    // 1. Releases.
    for (const Task& t : sys.tasks()) {
      const auto ti = static_cast<std::size_t>(t.id.value());
      auto& nr = next_release[ti];
      const auto makeJob = [&](Time actual, Time nominal) {
        RJob j;
        j.id = JobId{t.id, instance[ti]++};
        j.task = &t;
        j.release = actual;
        j.deadline = nominal + t.relative_deadline;
        j.eligible_seq = ++seq;
        jobs.push_back(j);
      };
      // A jitter-deferred release comes due independently of nr; its
      // deadline stays tied to the nominal release time.
      if (jit_at[ti] >= 0 && jit_at[ti] <= now && jit_at[ti] < horizon) {
        makeJob(jit_at[ti], jit_nominal[ti]);
        jit_at[ti] = -1;
      }
      while (nr <= now && nr < horizon) {
        if (plan != nullptr) {
          Duration jd = plan->releaseJitter(t.id, instance[ti]);
          jd = std::min<Duration>(jd, t.period - 1);
          if (jd > 0) {
            jit_at[ti] = nr + jd;
            jit_nominal[ti] = nr;
            result.counters.faults_injected++;
            nr += t.period;
            continue;
          }
        }
        makeJob(nr, nr);
        nr += t.period;
      }
    }
    // 2. Voluntary wakes.
    for (RJob& j : jobs) {
      if (!j.finished && j.wake_at >= 0 && j.wake_at <= now) {
        j.wake_at = -1;
        j.eligible_seq = ++seq;
      }
    }

    // 2b. Stuck-holder watchdog: revoke any global semaphore whose holder
    //     has kept it for `holder_watchdog` ticks and hand it to the
    //     highest-priority waiter — the reference half of the engine's
    //     watchdog containment policy. Deferred while the holder is not
    //     schedulable (parity with the engine's ready-state guard).
    if (holder_watchdog > 0) {
      for (auto& [rv, g] : globals) {
        if (g.holder == nullptr || g.since < 0 ||
            now - g.since < holder_watchdog) {
          continue;
        }
        RJob* h = g.holder;
        if (h->finished || h->waiting_global || h->wake_at >= 0 ||
            h->parked_local) {
          continue;
        }
        const ResourceId r(rv);
        result.counters.forced_releases++;
        result.counters.faults_contained++;
        MPCP_CHECK(!h->held.empty() && h->held.back() == r,
                   "reference: forced release of non-innermost semaphore");
        h->held.pop_back();
        const auto& hops = opsOf(*h);
        const auto* u = h->op < hops.size()
                            ? std::get_if<UnlockOp>(&hops[h->op])
                            : nullptr;
        if (u != nullptr && u->resource == r) {
          // The holder sits right at this V() (stuck, burning time):
          // consume it so the rest of the body runs.
          h->op++;
          h->done_in_op = 0;
          h->cur_len = -1;
        } else {
          h->force_released.push_back(r);
        }
        g.holder = nullptr;
        g.since = -1;
        if (!g.queue.empty()) {
          auto best = g.queue.begin();
          for (auto it = g.queue.begin(); it != g.queue.end(); ++it) {
            if ((*it)->task->priority > (*best)->task->priority) best = it;
          }
          RJob* next = *best;
          g.queue.erase(best);
          g.holder = next;
          g.since = now;
          result.counters.res(r).handoffs++;
          result.counters.res(r).acquisitions++;
          next->held.push_back(r);
          next->op++;  // consume the pending LockOp
          next->waiting_global = false;
          next->eligible_seq = ++seq;
        }
      }
    }

    // 3. Scheduling fixpoint: pick per-processor runners, processing
    //    zero-duration ops (locks, unlocks, suspends, completions) until
    //    nothing changes. Processor visit order mirrors the engine's
    //    settle(): each processor drains its top candidate's zero-time
    //    ops before moving on; the pass repeats until stable.
    std::vector<RJob*> runner(static_cast<std::size_t>(procs), nullptr);

    // Declarative PCP inheritance, recomputed from scratch on demand: a
    // job whose pending local lock fails the ceiling test donates its
    // priority to the blocking holder, transitively.
    std::map<const RJob*, Priority> inherited;
    const auto effective = [&](const RJob& j) {
      Priority pr = j.task->priority;
      const auto it = inherited.find(&j);
      if (it != inherited.end()) pr = std::max(pr, it->second);
      return std::max(pr, elevationOf(j));
    };
    // Highest-ceiling local semaphore held by someone other than j on
    // processor p; returns the holder (nullptr if no such semaphore).
    const auto blockerFor = [&](int p, const RJob& j,
                                Priority* ceiling) -> RJob* {
      RJob* blocker = nullptr;
      *ceiling = kPriorityFloor;
      for (const auto& [r, holder] : localHolders(p)) {
        if (holder == &j) continue;
        const Priority c = tables.ceiling(r);
        if (blocker == nullptr || c > *ceiling) {
          blocker = holder;
          *ceiling = c;
        }
      }
      return blocker;
    };
    const auto recomputeInheritance = [&] {
      inherited.clear();
      bool inh_changed = true;
      while (inh_changed) {
        inh_changed = false;
        for (RJob& j : jobs) {
          if (j.finished || j.waiting_global || j.wake_at >= 0) continue;
          // Only a job that actually attempted the lock and parked donates
          // its priority (the engine's LocalPcp sets inheritance when the
          // attempt blocks, not when a lock op is merely pending) — eager
          // donation would boost the holder before the waiter's attempt
          // and reorder same-priority FIFO tie-breaks.
          if (!j.parked_local) continue;
          const auto& ops = opsOf(j);
          if (j.op >= ops.size()) continue;
          const auto* l = std::get_if<LockOp>(&ops[j.op]);
          if (l == nullptr || sys.isGlobal(l->resource)) continue;
          Priority top_ceiling = kPriorityFloor;
          RJob* blocker =
              blockerFor(j.task->processor.value(), j, &top_ceiling);
          if (blocker != nullptr && effective(j) <= top_ceiling) {
            const Priority donated = effective(j);
            Priority& slot = inherited[blocker];
            if (donated > slot && donated > blocker->task->priority) {
              slot = donated;
              inh_changed = true;
            }
          }
        }
      }
    };

    bool pass_changed = true;
    while (pass_changed) {
      pass_changed = false;
      // One pick + drain per processor per pass, exactly like settle():
      // a mutation moves on to the NEXT processor with the new state; the
      // re-pick on this processor happens in the following pass.
      for (int p = 0; p < procs; ++p) {
        {
          recomputeInheritance();
          // Candidates on p, best-first by effective priority then FCFS.
          std::vector<RJob*> candidates;
          for (RJob& j : jobs) {
            if (j.finished || j.waiting_global || j.wake_at >= 0) continue;
            if (j.parked_local) continue;  // out of the ready set until woken
            if (j.task->processor.value() != p) continue;
            candidates.push_back(&j);
          }
          std::sort(candidates.begin(), candidates.end(),
                    [&](RJob* a, RJob* b) {
                      const Priority pa = effective(*a), pb = effective(*b);
                      if (pa != pb) return pa > pb;
                      return a->eligible_seq < b->eligible_seq;
                    });

          RJob* chosen = nullptr;
          bool mutated = false;
          for (RJob* j : candidates) {
            // Drain this candidate's zero-time ops exactly like the
            // engine's processRunnableOps: once dispatched, a job keeps
            // issuing operations until it needs time, blocks, suspends
            // or finishes — even if an unlock lowered its priority
            // mid-drain (completion after the final V() is instantaneous).
            bool progressed = false;
            bool stop_candidate_scan = false;
            while (true) {
              const auto& ops = opsOf(*j);
              if (j->op >= ops.size()) {
                j->finished = true;
                result.jobs.push_back({j->id, j->release, now});
                if (now > j->deadline) result.any_deadline_miss = true;
                progressed = true;
                stop_candidate_scan = true;
                break;
              }
              if (std::get_if<ComputeOp>(&ops[j->op]) != nullptr) {
                if (!progressed) chosen = j;  // runnable as-is
                stop_candidate_scan = true;
                break;
              }
              if (const auto* susp = std::get_if<SuspendOp>(&ops[j->op])) {
                j->op++;
                j->wake_at = now + susp->duration;
                progressed = true;
                stop_candidate_scan = true;
                break;
              }
              if (const auto* l = std::get_if<LockOp>(&ops[j->op])) {
                // Mirror the engine's V() scheduling point: if an earlier
                // op in this drain left a strictly higher-priority job
                // eligible on p, that job preempts before j's next P().
                // Back-to-back critical sections must not run atomically —
                // the F5 blocking bound's once-per-resume argument depends
                // on this preemption opportunity.
                if (progressed) {
                  recomputeInheritance();
                  bool preempted = false;
                  for (RJob& o : jobs) {
                    if (&o == j || o.finished || o.waiting_global ||
                        o.wake_at >= 0 || o.parked_local) {
                      continue;
                    }
                    if (o.task->processor.value() != p) continue;
                    if (effective(o) > effective(*j)) {
                      preempted = true;
                      break;
                    }
                  }
                  if (preempted) {
                    stop_candidate_scan = true;
                    break;  // j stays eligible; the re-run pass dispatches
                  }
                }
                if (sys.isGlobal(l->resource)) {
                  GlobalSem& g = globals[l->resource.value()];
                  if (g.holder == nullptr || g.holder == j) {
                    if (g.holder == nullptr) g.since = now;
                    g.holder = j;
                    result.counters.res(l->resource).acquisitions++;
                    j->held.push_back(l->resource);
                    j->op++;
                    progressed = true;
                    continue;
                  }
                  g.queue.push_back(j);
                  result.counters.res(l->resource).contended_waits++;
                  j->waiting_global = true;
                  progressed = true;
                  stop_candidate_scan = true;
                  break;
                }
                Priority top_ceiling = kPriorityFloor;
                RJob* blocker = blockerFor(p, *j, &top_ceiling);
                // The drain may have changed priorities (e.g. an unlock
                // dropped the elevation), so re-evaluate effective()
                // against a freshly derived inheritance picture: the
                // outer loop recomputes it, so be conservative here and
                // use the current map (matches the engine, which also
                // tests with the state as-of the attempt).
                if (blocker == nullptr || effective(*j) > top_ceiling) {
                  result.counters.res(l->resource).acquisitions++;
                  j->held.push_back(l->resource);
                  j->op++;
                  progressed = true;
                  continue;
                }
                // Ceiling-blocked: park like the engine's LocalPcp (the
                // job leaves the ready set until a local unlock on this
                // processor wakes it for a retry). If nothing was
                // consumed, fall through to the next candidate; else
                // re-run the pass.
                j->parked_local = true;
                result.counters.res(l->resource).contended_waits++;
                parked_local_q[static_cast<std::size_t>(p)].push_back(j);
                stop_candidate_scan = progressed;
                progressed = true;  // parking mutated scheduler state
                break;
              }
              if (const auto* u = std::get_if<UnlockOp>(&ops[j->op])) {
                // Watchdog already revoked this semaphore: the V() is a
                // no-op.
                const auto fr = std::find(j->force_released.begin(),
                                          j->force_released.end(),
                                          u->resource);
                if (fr != j->force_released.end()) {
                  j->force_released.erase(fr);
                  j->op++;
                  progressed = true;
                  continue;
                }
                if (plan != nullptr && !j->held.empty() &&
                    j->held.back() == u->resource &&
                    plan->stuckAt(j->id.task, j->id.instance, u->resource)) {
                  // Stuck holder: never executes this V(); burns clock
                  // time at the unlock site like a compute op.
                  noteFault(*j, fault::FaultKind::kStuckHolder);
                  if (!progressed) chosen = j;  // runnable-as-is (burning)
                  stop_candidate_scan = true;
                  break;
                }
                MPCP_CHECK(!j->held.empty() && j->held.back() == u->resource,
                           "reference: unlock order violated");
                j->held.pop_back();
                j->op++;
                if (!sys.isGlobal(u->resource)) {
                  // Blocking conditions changed: wake every parked job
                  // for a retry, re-stamping arrival order exactly like
                  // the engine's wake() (losers re-park on the retry).
                  auto& parked = parked_local_q[static_cast<std::size_t>(p)];
                  for (RJob* w : parked) {
                    w->parked_local = false;
                    w->eligible_seq = ++seq;
                  }
                  parked.clear();
                }
                if (sys.isGlobal(u->resource)) {
                  GlobalSem& g = globals[u->resource.value()];
                  MPCP_CHECK(g.holder == j, "reference: non-holder unlock");
                  g.holder = nullptr;
                  g.since = -1;
                  if (!g.queue.empty()) {
                    auto best = g.queue.begin();
                    for (auto it = g.queue.begin(); it != g.queue.end();
                         ++it) {
                      if ((*it)->task->priority > (*best)->task->priority) {
                        best = it;
                      }
                    }
                    RJob* next = *best;
                    g.queue.erase(best);
                    g.holder = next;
                    g.since = now;
                    result.counters.res(u->resource).handoffs++;
                    result.counters.res(u->resource).acquisitions++;
                    next->held.push_back(u->resource);
                    next->op++;  // consume the pending LockOp
                    next->waiting_global = false;
                    next->eligible_seq = ++seq;
                  }
                }
                progressed = true;
                continue;
              }
            }
            if (progressed) mutated = true;
            if (stop_candidate_scan || mutated) break;
            // else: candidate immediately ceiling-blocked; try the next.
          }
          if (mutated) {
            pass_changed = true;
            runner[static_cast<std::size_t>(p)] = nullptr;  // re-pick later
          } else {
            runner[static_cast<std::size_t>(p)] = chosen;
          }
        }
      }
    }

    // 4. Deadline overrun visibility (parity with the engine's policy).
    for (RJob& j : jobs) {
      if (!j.finished && now > j.deadline) result.any_deadline_miss = true;
    }

    // 5. Execute one tick per processor.
    if (final_instant) break;
    for (int p = 0; p < procs; ++p) {
      RJob* j = runner[static_cast<std::size_t>(p)];
      if (j == nullptr) continue;
      const auto& ops = opsOf(*j);
      if (const auto* c = std::get_if<ComputeOp>(&ops[j->op])) {
        if (j->cur_len < 0) {
          j->cur_len = plan != nullptr ? refComputeLen(*j, c->duration)
                                       : c->duration;
        }
        if (++j->done_in_op >= j->cur_len) {
          j->op++;
          j->done_in_op = 0;
          j->cur_len = -1;
        }
      }
      // else: a stuck holder burning time at its V() — no progress.
    }
  }

  // Jobs still unfinished after the final fixpoint are censored.
  for (RJob& j : jobs) {
    if (j.finished) continue;
    result.jobs.push_back({j.id, j.release, -1});
    if (j.deadline <= horizon) result.any_deadline_miss = true;
  }

  // Deterministic output order.
  std::sort(result.jobs.begin(), result.jobs.end(),
            [](const ReferenceJobResult& a, const ReferenceJobResult& b) {
              if (a.id.task != b.id.task) return a.id.task < b.id.task;
              return a.id.instance < b.id.instance;
            });
  return result;
}

}  // namespace mpcp
