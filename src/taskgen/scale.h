// Workload scaling for breakdown-utilization experiments: multiply every
// compute and critical-section duration by a factor, preserving periods,
// structure and binding. The classic breakdown metric then binary-searches
// the largest factor a schedulability test accepts.
#pragma once

#include "model/task_system.h"

namespace mpcp {

/// Returns a copy of `system` with every ComputeOp duration scaled by
/// `factor` (rounded, min 1 tick) and suspensions left unchanged.
/// Priorities are re-derived (periods are unchanged, so RM order is too).
[[nodiscard]] TaskSystem scaleWorkload(const TaskSystem& system,
                                       double factor);

}  // namespace mpcp
