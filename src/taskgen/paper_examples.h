// The paper's worked examples as ready-made task systems.
//
// Examples 1 and 2 (Figures 3-1/3-2) are the remote-blocking scenarios of
// Section 3.3; Example 3 (Figure 4-2, Tables 4-1/4-2) is the 3-processor
// 7-task configuration whose ceilings and gcs priorities the paper
// tabulates; Example 4 (Figure 5-1) runs Example 3's task set under the
// shared-memory protocol.
//
// The original text's table of bodies is OCR-damaged, so Example 3 is a
// faithful *reconstruction*: same topology (tau1,tau2 on P1; tau3,tau4 on
// P2; tau5..tau7 on P3; one local semaphore on P1, two on P3, two global
// semaphores spanning all three processors), with durations chosen so the
// Example 4 run exhibits every characteristic the paper lists at the end
// of Section 5 (gcs's outprioritize normal code, gcs preempts gcs by gcs
// priority, priority-ordered signalling, lower-priority execution during
// suspension, PCP on local semaphores). See EXPERIMENTS.md E3-E5.
#pragma once

#include <array>

#include "common/types.h"
#include "model/task_system.h"

namespace mpcp::paper {

/// Example 1 (Figure 3-1): tau1 on P1 wants global S held by
/// lowest-priority tau3 on P2 while medium tau2 (WCET = `medium_wcet`)
/// preempts tau3. Without inheritance tau1's blocking grows with
/// `medium_wcet`.
struct Example1 {
  TaskId tau1, tau2, tau3;
  ResourceId s;
  TaskSystem sys;
};
[[nodiscard]] Example1 makeExample1(Duration medium_wcet = 5);

/// Example 2 (Figure 3-2): tau1 (high, WCET = `t1_wcet`) and tau2 (low,
/// holds global S) on P1; tau3 on P2 waits for S. PIP cannot stop tau1's
/// normal execution from extending tau3's wait; MPCP can.
struct Example2 {
  TaskId tau1, tau2, tau3;
  ResourceId s;
  TaskSystem sys;
};
[[nodiscard]] Example2 makeExample2(Duration t1_wcet = 5);

/// Example 3 / Example 4 configuration (see file comment).
struct Example3 {
  std::array<TaskId, 7> tau;  ///< tau[0] = tau1 (highest priority) ...
  ResourceId s1;              ///< local to P1 (used by tau2)
  ResourceId s2, s3;          ///< local to P3
  ResourceId s4, s5;          ///< global (P1+P2+P3)
  TaskSystem sys;
};
[[nodiscard]] Example3 makeExample3();

}  // namespace mpcp::paper
