#include "taskgen/uunifast.h"

#include <cmath>

#include "common/check.h"

namespace mpcp {

std::vector<double> uunifast(int n, double total, Rng& rng) {
  MPCP_CHECK(n >= 1, "uunifast: n must be >= 1");
  MPCP_CHECK(total > 0, "uunifast: total utilization must be > 0");
  std::vector<double> u(static_cast<std::size_t>(n));
  double sum = total;
  for (int i = 1; i < n; ++i) {
    const double next =
        sum * std::pow(rng.uniform01(), 1.0 / static_cast<double>(n - i));
    u[static_cast<std::size_t>(i - 1)] = sum - next;
    sum = next;
  }
  u[static_cast<std::size_t>(n - 1)] = sum;
  return u;
}

Duration logUniformPeriod(Duration lo, Duration hi, Duration granularity,
                          Rng& rng) {
  MPCP_CHECK(lo > 0 && hi >= lo, "logUniformPeriod: bad range");
  MPCP_CHECK(granularity >= 1, "logUniformPeriod: bad granularity");
  const double x = rng.uniformReal(std::log(static_cast<double>(lo)),
                                   std::log(static_cast<double>(hi)));
  auto period = static_cast<Duration>(std::exp(x));
  period -= period % granularity;
  if (period < granularity) period = granularity;
  if (period < lo) period = lo + (granularity - lo % granularity) % granularity;
  return std::min(period, hi);
}

}  // namespace mpcp
