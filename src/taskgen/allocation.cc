#include "taskgen/allocation.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/check.h"
#include "model/sections.h"

namespace mpcp {

namespace {

double utilOf(const UnboundTask& t) {
  return static_cast<double>(t.body.totalCompute()) /
         static_cast<double>(t.period);
}

std::set<std::int32_t> resourcesOf(const UnboundTask& t) {
  std::set<std::int32_t> out;
  for (const CriticalSection& cs : extractSections(t.body)) {
    out.insert(cs.resource.value());
  }
  return out;
}

/// Indices sorted by decreasing utilization (stable for determinism).
std::vector<std::size_t> decreasingOrder(const std::vector<UnboundTask>& ts) {
  std::vector<std::size_t> order(ts.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return utilOf(ts[a]) > utilOf(ts[b]);
                   });
  return order;
}

int leastLoaded(const std::vector<double>& load) {
  return static_cast<int>(
      std::min_element(load.begin(), load.end()) - load.begin());
}

}  // namespace

AllocationResult allocateFirstFitDecreasing(
    const std::vector<UnboundTask>& tasks, int processors, double capacity) {
  MPCP_CHECK(processors >= 1, "allocate: need >= 1 processor");
  AllocationResult result;
  result.processor.assign(tasks.size(), -1);
  std::vector<double> load(static_cast<std::size_t>(processors), 0.0);

  for (std::size_t idx : decreasingOrder(tasks)) {
    const double u = utilOf(tasks[idx]);
    int chosen = -1;
    for (int p = 0; p < processors; ++p) {
      if (load[static_cast<std::size_t>(p)] + u <= capacity) {
        chosen = p;
        break;
      }
    }
    if (chosen < 0) {
      chosen = leastLoaded(load);
      result.within_capacity = false;
    }
    result.processor[idx] = chosen;
    load[static_cast<std::size_t>(chosen)] += u;
  }
  return result;
}

AllocationResult allocateResourceAffinity(const std::vector<UnboundTask>& tasks,
                                          int processors, double capacity) {
  MPCP_CHECK(processors >= 1, "allocate: need >= 1 processor");
  AllocationResult result;
  result.processor.assign(tasks.size(), -1);
  std::vector<double> load(static_cast<std::size_t>(processors), 0.0);
  // Resources already present on each processor.
  std::vector<std::set<std::int32_t>> hosted(
      static_cast<std::size_t>(processors));

  std::vector<std::set<std::int32_t>> needs(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    needs[i] = resourcesOf(tasks[i]);
  }

  for (std::size_t idx : decreasingOrder(tasks)) {
    const double u = utilOf(tasks[idx]);
    int chosen = -1;
    std::size_t best_affinity = 0;
    for (int p = 0; p < processors; ++p) {
      if (load[static_cast<std::size_t>(p)] + u > capacity) continue;
      std::size_t affinity = 0;
      for (std::int32_t r : needs[idx]) {
        affinity += hosted[static_cast<std::size_t>(p)].count(r);
      }
      // Prefer higher affinity; ties go to the least-loaded candidate.
      if (chosen < 0 || affinity > best_affinity ||
          (affinity == best_affinity &&
           load[static_cast<std::size_t>(p)] <
               load[static_cast<std::size_t>(chosen)])) {
        chosen = p;
        best_affinity = affinity;
      }
    }
    if (chosen < 0) {
      chosen = leastLoaded(load);
      result.within_capacity = false;
    }
    result.processor[idx] = chosen;
    load[static_cast<std::size_t>(chosen)] += u;
    hosted[static_cast<std::size_t>(chosen)].insert(needs[idx].begin(),
                                                    needs[idx].end());
  }
  return result;
}

TaskSystem bindTasks(const std::vector<UnboundTask>& tasks,
                     const AllocationResult& allocation, int processors,
                     int resource_count, TaskSystemOptions options) {
  MPCP_CHECK(allocation.processor.size() == tasks.size(),
             "bindTasks: allocation does not match the task list");
  TaskSystemBuilder builder(processors, options);
  for (int r = 0; r < resource_count; ++r) {
    builder.addResource();
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    TaskSpec spec;
    spec.name = tasks[i].name;
    spec.period = tasks[i].period;
    spec.processor = allocation.processor[i];
    spec.body = tasks[i].body;
    builder.addTask(std::move(spec));
  }
  return std::move(builder).build();
}

}  // namespace mpcp
