#include "taskgen/aperiodic.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "common/check.h"

namespace mpcp {

std::vector<AperiodicRequest> generateAperiodicArrivals(
    double mean_interarrival, Duration work_min, Duration work_max,
    Time horizon, Rng& rng) {
  MPCP_CHECK(mean_interarrival > 0, "mean interarrival must be positive");
  MPCP_CHECK(work_min >= 1 && work_max >= work_min, "bad work range");
  std::vector<AperiodicRequest> out;
  double t = 0;
  while (true) {
    // Exponential interarrival via inverse transform.
    t += -mean_interarrival * std::log(1.0 - rng.uniform01());
    const Time arrival = static_cast<Time>(t);
    if (arrival >= horizon) break;
    out.push_back({arrival, rng.uniformInt(work_min, work_max)});
  }
  return out;
}

std::vector<ServedRequest> replayServer(const SimResult& result,
                                        TaskId server,
                                        std::vector<AperiodicRequest> requests,
                                        ServerDiscipline discipline) {
  std::sort(requests.begin(), requests.end(),
            [](const AperiodicRequest& a, const AperiodicRequest& b) {
              return a.arrival < b.arrival;
            });

  // Release time per server instance.
  std::map<std::int64_t, Time> release_of;
  for (const JobRecord& jr : result.jobs) {
    if (jr.id.task == server) release_of[jr.id.instance] = jr.release;
  }

  // Server execution windows, in time order.
  struct Window {
    Time begin, end;
    std::int64_t instance;
  };
  std::vector<Window> windows;
  for (const ExecSegment& s : result.segments) {
    if (s.job.task == server) {
      windows.push_back({s.begin, s.end, s.job.instance});
    }
  }
  std::sort(windows.begin(), windows.end(),
            [](const Window& a, const Window& b) { return a.begin < b.begin; });

  std::vector<ServedRequest> served;
  served.reserve(requests.size());
  for (const AperiodicRequest& r : requests) {
    served.push_back({r, -1});
  }

  struct Pending {
    std::size_t index;  // into `served`
    Duration remaining;
  };
  std::deque<Pending> queue;
  std::size_t next_arrival = 0;

  const auto admitUpTo = [&](Time cutoff) {
    while (next_arrival < served.size() &&
           served[next_arrival].request.arrival <= cutoff) {
      queue.push_back(
          {next_arrival, served[next_arrival].request.work});
      ++next_arrival;
    }
  };

  for (const Window& w : windows) {
    const auto rel_it = release_of.find(w.instance);
    MPCP_CHECK(rel_it != release_of.end(),
               "server segment without a job record (instance "
                   << w.instance << ")");
    Time t = w.begin;
    while (t < w.end) {
      // Eligibility: polling admits only pre-release arrivals; deferrable
      // admits anything that has arrived by `t`.
      admitUpTo(discipline == ServerDiscipline::kPolling ? rel_it->second
                                                         : t);
      if (queue.empty()) {
        if (discipline == ServerDiscipline::kDeferrable &&
            next_arrival < served.size() &&
            served[next_arrival].request.arrival < w.end) {
          t = served[next_arrival].request.arrival;  // budget waits
          continue;
        }
        break;  // rest of this instance's budget is lost
      }
      Pending& head = queue.front();
      const Duration delta = std::min<Duration>(head.remaining, w.end - t);
      t += delta;
      head.remaining -= delta;
      if (head.remaining == 0) {
        served[head.index].completion = t;
        queue.pop_front();
      }
    }
  }
  return served;
}

}  // namespace mpcp
