// Synthetic workload generator for the schedulability experiments.
//
// Produces task systems in the mould of the paper's model: statically
// bound periodic tasks whose bodies interleave normal computation with
// local and global critical sections. Every knob the experiments sweep is
// a parameter here; generation is fully deterministic given the seed.
#pragma once

#include <optional>

#include "common/rng.h"
#include "model/task_system.h"

namespace mpcp {

struct WorkloadParams {
  int processors = 4;
  int tasks_per_processor = 4;
  /// Target utilization of each processor (before blocking).
  double utilization_per_processor = 0.5;

  Duration period_min = 1'000;
  Duration period_max = 100'000;
  Duration period_granularity = 100;

  /// Number of shared resources intended to be global (the generator
  /// spreads their users across processors).
  int global_resources = 3;
  /// Per-task number of global critical sections, uniform in
  /// [0, max_gcs_per_task]. The paper's NG_i knob.
  int max_gcs_per_task = 2;
  /// Probability that a task participates in global sharing at all.
  double global_sharing_prob = 0.6;

  /// Local resources per processor and per-task local sections.
  int local_resources_per_processor = 1;
  int max_lcs_per_task = 1;
  double local_sharing_prob = 0.5;

  /// Critical-section lengths, uniform in [cs_min, cs_max] ticks,
  /// truncated so a body's sections never exceed its WCET budget.
  Duration cs_min = 1;
  Duration cs_max = 50;

  /// When set, generate nested global pairs with this probability per
  /// gcs (requires allow_nested_global; only DPCP or the group-lock
  /// collapse can run such systems).
  double nested_global_prob = 0.0;

  /// Probability that a task self-suspends once mid-body (I/O model;
  /// exercises Theorem 1 and the deferred-execution machinery), with a
  /// duration uniform in [suspend_min, suspend_max].
  double suspension_prob = 0.0;
  Duration suspend_min = 1;
  Duration suspend_max = 20;
};

/// Generates one task system. Throws ConfigError only on nonsensical
/// parameters; degenerate draws (e.g. WCET too small for any section) are
/// resolved by shrinking section counts/lengths, never by failing.
[[nodiscard]] TaskSystem generateWorkload(const WorkloadParams& params,
                                          Rng& rng);

}  // namespace mpcp
