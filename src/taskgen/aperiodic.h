// Aperiodic workload service via periodic servers (Section 3.1: "An
// aperiodic task can be serviced by means of a periodic server [5]").
//
// The server is an ordinary periodic task in the TaskSystem (so all of
// the protocol machinery — blocking, gcs's, analysis — applies to it
// unchanged); its body is pure compute equal to the server budget. The
// simulator then tells us exactly *when* the server executed, including
// every delay the synchronization protocol inflicted. This module
// replays an aperiodic request stream against those execution windows:
//
//   * kPolling:    a request is eligible for a server instance only if it
//                  arrived at or before that instance's release (the
//                  server "polls" at its release and sleeps otherwise);
//   * kDeferrable: a request becomes eligible the moment it arrives, and
//                  the server instance may spend any remaining budget on
//                  it (bandwidth-preserving).
//
// Unused budget is lost at the end of the instance in both disciplines.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/result.h"

namespace mpcp {

struct AperiodicRequest {
  Time arrival = 0;
  Duration work = 0;
};

/// Poisson-ish arrivals: exponential interarrival times with the given
/// mean, uniform work in [work_min, work_max], up to `horizon`.
[[nodiscard]] std::vector<AperiodicRequest> generateAperiodicArrivals(
    double mean_interarrival, Duration work_min, Duration work_max,
    Time horizon, Rng& rng);

enum class ServerDiscipline { kPolling, kDeferrable };

struct ServedRequest {
  AperiodicRequest request;
  /// Completion time; -1 if unfinished within the simulated horizon.
  Time completion = -1;

  [[nodiscard]] Duration responseTime() const {
    return completion < 0 ? -1 : completion - request.arrival;
  }
};

/// Replays `requests` (sorted or not; they are sorted internally) against
/// the execution of task `server` in `result`. FIFO service.
[[nodiscard]] std::vector<ServedRequest> replayServer(
    const SimResult& result, TaskId server,
    std::vector<AperiodicRequest> requests,
    ServerDiscipline discipline = ServerDiscipline::kPolling);

}  // namespace mpcp
