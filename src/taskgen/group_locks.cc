#include "taskgen/group_locks.h"

#include <map>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/strf.h"

namespace mpcp {

namespace {

/// Plain union-find over resource ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

TaskSystem collapseToGroupLocks(const TaskSystem& system) {
  const std::size_t nres = system.resources().size();
  UnionFind uf(nres);

  // Union resources that co-appear in a nest involving a global section.
  bool any_nest = false;
  for (const Task& t : system.tasks()) {
    for (const CriticalSection& cs : t.sections) {
      if (cs.parent < 0) continue;
      const CriticalSection& outer =
          t.sections[static_cast<std::size_t>(cs.parent)];
      if (system.isGlobal(cs.resource) || system.isGlobal(outer.resource)) {
        uf.unite(static_cast<std::size_t>(cs.resource.value()),
                 static_cast<std::size_t>(outer.resource.value()));
        any_nest = true;
      }
    }
  }

  // Representative -> whether the group has more than one member.
  std::map<std::size_t, int> group_size;
  for (std::size_t r = 0; r < nres; ++r) group_size[uf.find(r)]++;

  TaskSystemBuilder builder(system.processorCount(), TaskSystemOptions{});
  // Recreate resources: singleton groups keep their name; multi-member
  // groups get one shared semaphore named after the representative.
  std::vector<ResourceId> remap(nres);
  std::map<std::size_t, ResourceId> group_res;
  for (std::size_t r = 0; r < nres; ++r) {
    const std::size_t rep = uf.find(r);
    if (group_size[rep] == 1) {
      remap[r] = builder.addResource(system.resources()[r].name);
      continue;
    }
    auto it = group_res.find(rep);
    if (it == group_res.end()) {
      it = group_res
               .emplace(rep, builder.addResource(strf(
                                 "grp(", system.resources()[rep].name, ")")))
               .first;
    }
    remap[r] = it->second;
  }

  // Rewrite bodies: map each lock/unlock through remap; a group lock is
  // taken on the first member acquisition and released on the last
  // (depth-counted), so nested members collapse into one flat section.
  for (const Task& t : system.tasks()) {
    Body body;
    std::map<std::int32_t, int> depth;  // group resource -> nesting depth
    for (const Op& op : t.body.ops()) {
      if (const auto* c = std::get_if<ComputeOp>(&op)) {
        body.compute(c->duration);
      } else if (const auto* l = std::get_if<LockOp>(&op)) {
        const ResourceId g = remap[static_cast<std::size_t>(
            l->resource.value())];
        if (depth[g.value()]++ == 0) body.lock(g);
      } else if (const auto* u = std::get_if<UnlockOp>(&op)) {
        const ResourceId g = remap[static_cast<std::size_t>(
            u->resource.value())];
        MPCP_CHECK(depth[g.value()] > 0,
                   "group-lock rewrite underflow on " << g);
        if (--depth[g.value()] == 0) body.unlock(g);
      }
    }

    TaskSpec spec;
    spec.name = t.name;
    spec.period = t.period;
    spec.phase = t.phase;
    spec.relative_deadline = t.relative_deadline;
    spec.processor = t.processor.value();
    spec.body = std::move(body);
    builder.addTask(std::move(spec));
  }

  (void)any_nest;
  return std::move(builder).build();
}

}  // namespace mpcp
