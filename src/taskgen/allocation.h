// Static task-to-processor allocation heuristics (Section 3.2 argues for
// static binding; the conclusion sketches allocating tasks with heavy
// mutual resource sharing to the same processors).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "model/body.h"
#include "model/task_system.h"

namespace mpcp {

/// A task before binding: everything except the processor.
struct UnboundTask {
  std::string name;
  Duration period = 0;
  Body body;
};

struct AllocationResult {
  std::vector<int> processor;  ///< per task, parallel to the input
  /// False if some task exceeded `capacity` on every processor (it is
  /// still placed on the least-loaded one).
  bool within_capacity = true;
};

/// First-fit decreasing by utilization: classic bin packing against a
/// per-processor utilization cap (e.g. the ln 2 bound of Section 3.2).
[[nodiscard]] AllocationResult allocateFirstFitDecreasing(
    const std::vector<UnboundTask>& tasks, int processors, double capacity);

/// Resource-affinity allocation: like FFD, but prefers the processor
/// already hosting the most tasks that share resources with the candidate
/// (converting would-be global semaphores into local ones), subject to the
/// capacity cap. This is the conclusion's allocation sketch.
[[nodiscard]] AllocationResult allocateResourceAffinity(
    const std::vector<UnboundTask>& tasks, int processors, double capacity);

/// Builds a TaskSystem from tasks plus an allocation.
[[nodiscard]] TaskSystem bindTasks(const std::vector<UnboundTask>& tasks,
                                   const AllocationResult& allocation,
                                   int processors, int resource_count,
                                   TaskSystemOptions options = {});

}  // namespace mpcp
