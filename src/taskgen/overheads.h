// Implementation-overhead modelling (Section 5.2/5.4).
//
// The paper weighs the shared-memory protocol's "higher implementation
// efficiency in tightly coupled multiprocessors" against "the large
// overhead inherent in the message-passing protocol where every gcs of a
// job is generally executed in a remote processor". We model those costs
// as extra execution *inside* each critical section:
//
//   lock_entry   — cost of a successful P() (atomic RMW + queue ops),
//                  paid right after the lock;
//   unlock_exit  — cost of V() (queue pop + handoff/signal), paid right
//                  before the unlock;
//   migration_leg— request/reply messaging per direction, charged twice
//                  per *global* section when the protocol executes gcs's
//                  remotely (DPCP / message-based policy), zero otherwise.
//
// Because the transformation rewrites the task bodies, simulation and
// analysis both see the inflated sections with no special cases.
#pragma once

#include "common/types.h"
#include "model/task_system.h"

namespace mpcp {

struct OverheadModel {
  Duration lock_entry = 0;
  Duration unlock_exit = 0;
  Duration migration_leg = 0;
};

/// Returns a copy of `system` with overheads folded into every critical
/// section. `global_sections_migrate` selects whether migration legs are
/// charged on global sections (true for DPCP-style execution).
[[nodiscard]] TaskSystem applyOverheadModel(const TaskSystem& system,
                                            const OverheadModel& model,
                                            bool global_sections_migrate);

}  // namespace mpcp
