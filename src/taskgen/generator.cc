#include "taskgen/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strf.h"
#include "taskgen/uunifast.h"

namespace mpcp {

namespace {

/// Draws `m` section lengths in [cs_min, cs_max] whose sum stays within
/// `budget`, shrinking m if even minimal sections do not fit.
std::vector<Duration> drawSectionLengths(int m, Duration budget,
                                         Duration cs_min, Duration cs_max,
                                         Rng& rng) {
  while (m > 0 && static_cast<Duration>(m) * cs_min > budget) --m;
  std::vector<Duration> lengths;
  Duration remaining = budget;
  for (int i = 0; i < m; ++i) {
    const Duration reserve = static_cast<Duration>(m - i - 1) * cs_min;
    const Duration hi = std::min(cs_max, remaining - reserve);
    const Duration len = rng.uniformInt(cs_min, std::max(cs_min, hi));
    lengths.push_back(len);
    remaining -= len;
  }
  return lengths;
}

}  // namespace

TaskSystem generateWorkload(const WorkloadParams& params, Rng& rng) {
  MPCP_CHECK(params.processors >= 1, "generateWorkload: need >= 1 processor");
  MPCP_CHECK(params.tasks_per_processor >= 1,
             "generateWorkload: need >= 1 task per processor");
  MPCP_CHECK(params.cs_min >= 1 && params.cs_max >= params.cs_min,
             "generateWorkload: bad critical-section range");

  TaskSystemOptions options;
  options.allow_nested_global = params.nested_global_prob > 0.0;
  TaskSystemBuilder builder(params.processors, options);

  std::vector<ResourceId> global_pool;
  for (int g = 0; g < params.global_resources; ++g) {
    global_pool.push_back(builder.addResource(strf("G", g + 1)));
  }
  std::vector<std::vector<ResourceId>> local_pool(
      static_cast<std::size_t>(params.processors));
  for (int p = 0; p < params.processors; ++p) {
    for (int l = 0; l < params.local_resources_per_processor; ++l) {
      local_pool[static_cast<std::size_t>(p)].push_back(
          builder.addResource(strf("L", p + 1, "_", l + 1)));
    }
  }

  for (int p = 0; p < params.processors; ++p) {
    const std::vector<double> utils = uunifast(
        params.tasks_per_processor, params.utilization_per_processor, rng);
    for (int k = 0; k < params.tasks_per_processor; ++k) {
      const Duration period =
          logUniformPeriod(params.period_min, params.period_max,
                           params.period_granularity, rng);
      Duration wcet = static_cast<Duration>(
          std::llround(utils[static_cast<std::size_t>(k)] *
                       static_cast<double>(period)));
      wcet = std::clamp<Duration>(wcet, 1, period);

      // Section counts, bounded by the WCET budget (reserve 1 tick of
      // leading normal execution).
      int ng = 0;
      if (!global_pool.empty() && params.max_gcs_per_task > 0 &&
          rng.chance(params.global_sharing_prob)) {
        ng = static_cast<int>(rng.uniformInt(1, params.max_gcs_per_task));
      }
      int nl = 0;
      if (!local_pool[static_cast<std::size_t>(p)].empty() &&
          params.max_lcs_per_task > 0 &&
          rng.chance(params.local_sharing_prob)) {
        nl = static_cast<int>(rng.uniformInt(1, params.max_lcs_per_task));
      }

      const Duration budget = wcet - 1;
      std::vector<Duration> gcs_len =
          drawSectionLengths(ng, budget, params.cs_min, params.cs_max, rng);
      ng = static_cast<int>(gcs_len.size());
      Duration used = 0;
      for (Duration d : gcs_len) used += d;
      std::vector<Duration> lcs_len = drawSectionLengths(
          nl, budget - used, params.cs_min, params.cs_max, rng);
      nl = static_cast<int>(lcs_len.size());
      for (Duration d : lcs_len) used += d;

      // Assemble the body: leading compute, then sections in shuffled
      // order with the leftover compute spread over the gaps.
      struct PlannedSection {
        ResourceId resource;
        Duration length;
        bool global;
      };
      std::vector<PlannedSection> sections;
      for (Duration d : gcs_len) {
        sections.push_back(
            {global_pool[rng.index(global_pool.size())], d, true});
      }
      for (Duration d : lcs_len) {
        const auto& pool = local_pool[static_cast<std::size_t>(p)];
        sections.push_back({pool[rng.index(pool.size())], d, false});
      }
      rng.shuffle(sections);

      Duration normal = wcet - used;  // >= 1
      Body body;
      // Leading compute: at least 1 tick, up to an even share.
      const auto gaps = static_cast<Duration>(sections.size()) + 1;
      Duration lead = std::max<Duration>(1, normal / gaps);
      body.compute(lead);
      normal -= lead;
      // Optional single mid-body self-suspension (never inside a section:
      // it goes right after the leading compute).
      if (params.suspension_prob > 0 && rng.chance(params.suspension_prob)) {
        body.suspend(rng.uniformInt(params.suspend_min, params.suspend_max));
      }

      for (std::size_t s = 0; s < sections.size(); ++s) {
        const PlannedSection& ps = sections[s];
        // Occasionally nest a following *global* section inside this one
        // (nesting experiments only).
        const bool can_nest =
            options.allow_nested_global && ps.global &&
            s + 1 < sections.size() && sections[s + 1].global &&
            sections[s + 1].resource != ps.resource &&
            rng.chance(params.nested_global_prob);
        if (can_nest) {
          const PlannedSection inner = sections[s + 1];
          body.lock(ps.resource)
              .compute(ps.length)
              .section(inner.resource, inner.length)
              .unlock(ps.resource);
          ++s;  // consumed the inner section
        } else {
          body.section(ps.resource, ps.length);
        }
        if (normal > 0) {
          const Duration gap = rng.uniformInt(0, normal);
          if (gap > 0) {
            body.compute(gap);
            normal -= gap;
          }
        }
      }
      if (normal > 0) body.compute(normal);

      TaskSpec spec;
      spec.name = strf("tau", p + 1, "_", k + 1);
      spec.period = period;
      spec.processor = p;
      spec.body = std::move(body);
      builder.addTask(std::move(spec));
    }
  }
  return std::move(builder).build();
}

}  // namespace mpcp
