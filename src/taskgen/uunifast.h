// Utilization and period sampling primitives for synthetic workloads.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace mpcp {

/// UUniFast (Bini & Buttazzo): n utilizations summing to `total`,
/// uniformly distributed over the valid simplex.
[[nodiscard]] std::vector<double> uunifast(int n, double total, Rng& rng);

/// Log-uniform period in [lo, hi], rounded down to a multiple of
/// `granularity` (>= granularity). Log-uniform spread keeps hyperperiods
/// tame while covering magnitudes, the usual choice in schedulability
/// studies.
[[nodiscard]] Duration logUniformPeriod(Duration lo, Duration hi,
                                        Duration granularity, Rng& rng);

}  // namespace mpcp
