#include "taskgen/paper_examples.h"

namespace mpcp::paper {

Example1 makeExample1(Duration medium_wcet) {
  Example1 ex;
  TaskSystemBuilder b(2);
  ex.s = b.addResource("S");
  // RM priorities: tau1 (100) > tau2 (200) > tau3 (300).
  ex.tau1 = b.addTask({.name = "tau1", .period = 100, .phase = 2,
                       .processor = 0,
                       .body = Body{}.compute(1).section(ex.s, 2).compute(1)});
  ex.tau2 = b.addTask({.name = "tau2", .period = 200, .phase = 2,
                       .processor = 1, .body = Body{}.compute(medium_wcet)});
  ex.tau3 = b.addTask({.name = "tau3", .period = 300, .processor = 1,
                       .body = Body{}.compute(1).section(ex.s, 4).compute(1)});
  ex.sys = std::move(b).build();
  return ex;
}

Example2 makeExample2(Duration t1_wcet) {
  Example2 ex;
  TaskSystemBuilder b(2);
  ex.s = b.addResource("S");
  // RM priorities: tau1 (100) > tau3 (200) > tau2 (300).
  ex.tau1 = b.addTask({.name = "tau1", .period = 100, .phase = 2,
                       .processor = 0, .body = Body{}.compute(t1_wcet)});
  ex.tau2 = b.addTask({.name = "tau2", .period = 300, .processor = 0,
                       .body = Body{}.compute(1).section(ex.s, 3).compute(1)});
  ex.tau3 = b.addTask({.name = "tau3", .period = 200, .processor = 1,
                       .body = Body{}.compute(2).section(ex.s, 2).compute(1)});
  ex.sys = std::move(b).build();
  return ex;
}

Example3 makeExample3() {
  Example3 ex;
  TaskSystemBuilder b(3);
  ex.s1 = b.addResource("S1");
  ex.s2 = b.addResource("S2");
  ex.s3 = b.addResource("S3");
  ex.s4 = b.addResource("S4");
  ex.s5 = b.addResource("S5");

  // Periods 40 < 50 < ... < 100 give RM priorities P1 > P2 > ... > P7.
  // Phases stagger the releases so the Example 4 run shows contention on
  // both global semaphores plus local-PCP interaction on P3.
  ex.tau[0] = b.addTask(
      {.name = "tau1", .period = 40, .phase = 2, .processor = 0,
       .body = Body{}.compute(1).section(ex.s4, 2).compute(1)});
  ex.tau[1] = b.addTask(
      {.name = "tau2", .period = 50, .phase = 0, .processor = 0,
       .body =
           Body{}.compute(1).section(ex.s1, 2).section(ex.s5, 2).compute(1)});
  ex.tau[2] = b.addTask(
      {.name = "tau3", .period = 60, .phase = 0, .processor = 1,
       .body = Body{}.compute(1).section(ex.s4, 3).compute(1)});
  ex.tau[3] = b.addTask(
      {.name = "tau4", .period = 70, .phase = 1, .processor = 1,
       .body = Body{}.compute(1).section(ex.s5, 3).compute(1)});
  ex.tau[4] = b.addTask(
      {.name = "tau5", .period = 80, .phase = 0, .processor = 2,
       .body =
           Body{}.compute(1).section(ex.s4, 2).section(ex.s2, 2).compute(1)});
  ex.tau[5] = b.addTask(
      {.name = "tau6", .period = 90, .phase = 2, .processor = 2,
       .body =
           Body{}.compute(1).section(ex.s5, 2).section(ex.s3, 2).compute(1)});
  ex.tau[6] = b.addTask(
      {.name = "tau7", .period = 100, .phase = 0, .processor = 2,
       .body =
           Body{}.compute(1).section(ex.s2, 3).section(ex.s3, 3).compute(2)});
  ex.sys = std::move(b).build();
  return ex;
}

}  // namespace mpcp::paper
