#include "taskgen/scale.h"

#include <cmath>

#include "common/check.h"

namespace mpcp {

TaskSystem scaleWorkload(const TaskSystem& system, double factor) {
  MPCP_CHECK(factor > 0, "scaleWorkload: factor must be positive");
  TaskSystemBuilder b(system.processorCount(), system.options());
  for (const ResourceInfo& r : system.resources()) {
    const ResourceId nr = b.addResource(r.name);
    if (r.sync_processor.has_value()) {
      b.assignSyncProcessor(nr, *r.sync_processor);
    }
  }
  for (const Task& t : system.tasks()) {
    Body body;
    for (const Op& op : t.body.ops()) {
      if (const auto* c = std::get_if<ComputeOp>(&op)) {
        body.compute(std::max<Duration>(
            1, static_cast<Duration>(
                   std::llround(static_cast<double>(c->duration) * factor))));
      } else if (const auto* l = std::get_if<LockOp>(&op)) {
        body.lock(l->resource);
      } else if (const auto* u = std::get_if<UnlockOp>(&op)) {
        body.unlock(u->resource);
      } else if (const auto* susp = std::get_if<SuspendOp>(&op)) {
        body.suspend(susp->duration);
      }
    }
    TaskSpec spec;
    spec.name = t.name;
    spec.period = t.period;
    spec.phase = t.phase;
    spec.relative_deadline = t.relative_deadline;
    spec.processor = t.processor.value();
    spec.body = std::move(body);
    b.addTask(std::move(spec));
  }
  return std::move(b).build();
}

}  // namespace mpcp
