// Group-lock collapse (Section 5.1's remark on nested sections):
// "Another possible approach to analyze nested gcs's is to collapse
//  nested critical sections into non-nested gcs's ... by introducing
//  semaphores which subsume the nested semaphores."
//
// The pass unions resources that ever appear nested together (when either
// member of the nest is global) into groups, introduces one group
// semaphore per group, rewrites every access to a grouped resource into
// an access to its group semaphore, and drops the now-redundant inner
// lock/unlock pairs. The result satisfies MPCP's no-nested-gcs
// precondition at the cost of coarser locking — the trade-off the
// nesting-ablation bench quantifies.
#pragma once

#include "model/task_system.h"

namespace mpcp {

/// Returns a new TaskSystem with group locks substituted. Timing
/// (periods, phases, WCETs, section durations) is preserved exactly; only
/// the locking structure changes. Priorities are re-derived (RM).
[[nodiscard]] TaskSystem collapseToGroupLocks(const TaskSystem& system);

}  // namespace mpcp
