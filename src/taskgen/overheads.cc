#include "taskgen/overheads.h"

namespace mpcp {

TaskSystem applyOverheadModel(const TaskSystem& system,
                              const OverheadModel& model,
                              bool global_sections_migrate) {
  TaskSystemBuilder b(system.processorCount(), system.options());
  for (const ResourceInfo& r : system.resources()) {
    const ResourceId nr = b.addResource(r.name);
    if (r.sync_processor.has_value()) {
      b.assignSyncProcessor(nr, *r.sync_processor);
    }
  }

  for (const Task& t : system.tasks()) {
    Body body;
    for (const Op& op : t.body.ops()) {
      if (const auto* c = std::get_if<ComputeOp>(&op)) {
        body.compute(c->duration);
      } else if (const auto* susp = std::get_if<SuspendOp>(&op)) {
        body.suspend(susp->duration);
      } else if (const auto* l = std::get_if<LockOp>(&op)) {
        const bool migrates =
            global_sections_migrate && system.isGlobal(l->resource);
        body.lock(l->resource);
        const Duration entry =
            model.lock_entry + (migrates ? model.migration_leg : 0);
        if (entry > 0) body.compute(entry);
      } else if (const auto* u = std::get_if<UnlockOp>(&op)) {
        const bool migrates =
            global_sections_migrate && system.isGlobal(u->resource);
        const Duration exit_cost =
            model.unlock_exit + (migrates ? model.migration_leg : 0);
        if (exit_cost > 0) body.compute(exit_cost);
        body.unlock(u->resource);
      }
    }
    TaskSpec spec;
    spec.name = t.name;
    spec.period = t.period;
    spec.phase = t.phase;
    spec.relative_deadline = t.relative_deadline;
    spec.processor = t.processor.value();
    spec.body = std::move(body);
    b.addTask(std::move(spec));
  }
  return std::move(b).build();
}

}  // namespace mpcp
