// Self-contained fuzz repro files: everything needed to re-execute one
// finding bit-exactly — the serialized task system (model/serialize.*),
// the protocol and oracle that fired, the fault injection (if any), and
// the horizons the oracles ran with.
//
// Format (line-oriented; '#' comments; header keys then the task system):
//
//   # mpcp_fuzz repro v1
//   protocol mpcp                  # registry name ("a+b" for agreement)
//   oracle invariant:gcs-priority  # stable oracle id that fired
//   mutation gcs-ceiling-base      # optional fault injection
//   seed 1017                      # informational: generator RNG seed
//   horizon-cap 200000
//   differential-horizon 1200
//   fault-plan stuck:tau1:0:S0     # fault-mode only (fault/plan.h grammar;
//   fault-grace 1                  #   whitespace-free by construction)
//   fault-watchdog 500
//   system                         # remainder = model/serialize.h format
//   processors 2
//   ...
//
// replay() re-runs the recorded protocol(s) through all applicable
// oracles and renders a deterministic report: identical inputs produce a
// byte-identical report string on every invocation and at any
// MPCP_THREADS setting (replay is single-run and never fans out).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/oracles.h"
#include "model/task_system.h"

namespace mpcp::fuzz {

struct ReproCase {
  std::string protocol;  ///< registry name; "a+b" for cross-agreement
  std::string oracle;    ///< oracle id recorded at discovery time
  Mutation mutation = Mutation::kNone;
  std::uint64_t seed = 0;  ///< informational (system is self-contained)
  Time horizon_cap = 200'000;
  Time differential_horizon = 1'200;
  /// Fault-mode repros: the injected plan (fault/plan.h grammar, empty =
  /// not a fault finding) plus the containment parameters the fault:*
  /// oracles ran with.
  std::string fault_plan;
  double fault_grace = 1.0;
  Duration fault_watchdog = 500;
  TaskSystem system;
};

/// Serializes `repro` in the format above.
[[nodiscard]] std::string writeRepro(const ReproCase& repro);

/// Parses a repro file. Throws ConfigError (with context) on malformed
/// headers or task systems — fail loudly, never guess.
[[nodiscard]] ReproCase parseRepro(const std::string& text);
[[nodiscard]] ReproCase loadReproFile(const std::string& path);

struct ReplayOutcome {
  std::vector<OracleFailure> failures;
  std::string report;  ///< deterministic human-readable summary
  [[nodiscard]] bool clean() const { return failures.empty(); }
  /// True if some failure matches the recorded oracle id.
  [[nodiscard]] bool reproducesRecordedOracle(const ReproCase& r) const;
};

/// Re-executes the repro deterministically. `with_mutation` selects
/// whether the recorded fault injection is applied (replaying a
/// mutation-found repro without it should come back clean on a correct
/// implementation — exactly what the corpus regression test asserts).
/// Fault-mode repros (fault_plan non-empty) run the fault:* oracle suite;
/// there `with_mutation = false` replays with an empty plan, which a
/// correct implementation must also pass (neutral containment).
[[nodiscard]] ReplayOutcome replay(const ReproCase& repro,
                                   bool with_mutation = true);

}  // namespace mpcp::fuzz
