#include "fuzz/mutations.h"

#include <algorithm>

#include "common/check.h"
#include "common/strf.h"
#include "core/mpcp_protocol.h"
#include "protocols/local_pcp.h"
#include "protocols/sem_state.h"
#include "protocols/spin.h"
#include "sim/engine.h"

namespace mpcp::fuzz {

namespace {

/// MpcpProtocol with the gcs elevation de-based: rule 3 assigns
/// gcsPriority(S, host) - P_G, i.e. the highest remote-user priority in
/// the *normal* band. Everything else (queueing, handoff, local PCP) is
/// untouched, so only the ceiling-band oracles can tell the difference.
class GcsBaseFlippedMpcp final : public SyncProtocol {
 public:
  GcsBaseFlippedMpcp(const TaskSystem& system, const PriorityTables& tables)
      : system_(&system),
        tables_(&tables),
        local_(system, tables),
        global_(system.resources().size()) {}

  void attach(Engine& engine) override {
    SyncProtocol::attach(engine);
    local_.attach(engine);
  }

  LockOutcome onLock(Job& j, ResourceId r) override {
    if (!system_->isGlobal(r)) return local_.onLock(j, r);

    SemState& s = global_[static_cast<std::size_t>(r.value())];
    if (s.holder == &j) return LockOutcome::kGranted;
    if (s.holder == nullptr) {
      s.holder = &j;
      j.elevated = flippedElevation(j, r);
      engine_->notePriorityChanged(j);
      engine_->emit({.kind = Ev::kGcsEnter, .job = j.id, .processor = j.host,
                     .resource = r, .priority = j.elevated});
      return LockOutcome::kGranted;
    }
    s.queue.push(&j, j.base);
    engine_->parkWaiting(j, r, s.holder->id);
    return LockOutcome::kWaiting;
  }

  void onUnlock(Job& j, ResourceId r) override {
    if (!system_->isGlobal(r)) {
      local_.onUnlock(j, r);
      return;
    }
    SemState& s = global_[static_cast<std::size_t>(r.value())];
    MPCP_CHECK(s.holder == &j,
               j.id << " releasing " << r << " it does not hold");
    j.elevated = kPriorityFloor;
    engine_->notePriorityChanged(j);
    engine_->emit({.kind = Ev::kGcsExit, .job = j.id, .processor = j.current,
                   .resource = r, .priority = j.base});
    if (s.queue.empty()) {
      s.holder = nullptr;
      engine_->emit({.kind = Ev::kUnlock, .job = j.id, .processor = j.current,
                     .resource = r});
      return;
    }
    Job* next = s.queue.pop();
    s.holder = next;
    next->elevated = flippedElevation(*next, r);
    engine_->emit({.kind = Ev::kHandoff, .job = j.id, .processor = j.current,
                   .resource = r, .other = next->id});
    engine_->emit({.kind = Ev::kGcsEnter, .job = next->id,
                   .processor = next->host, .resource = r,
                   .priority = next->elevated});
    engine_->wake(*next);
  }

  void onJobFinished(Job& j) override { local_.onJobFinished(j); }
  [[nodiscard]] const char* name() const override {
    return "mpcp[gcs-ceiling-base]";
  }

 private:
  [[nodiscard]] Priority flippedElevation(const Job& j, ResourceId r) const {
    return Priority(tables_->gcsPriority(r, j.host).urgency() -
                    tables_->globalBase().urgency());
  }

  const TaskSystem* system_;
  const PriorityTables* tables_;
  LocalPcp local_;
  std::vector<SemState> global_;
};

/// SpinProtocol with the grant order deliberately wrong: spin-fifo hands
/// off to the NEWEST spinner (LIFO), spin-prio hands off in plain arrival
/// order. Everything else — non-preemptive elevation, parkSpinning /
/// noteSpinGranted, flat-section rejection — matches the real protocol,
/// so only the grant-order-sensitive oracles can tell the difference.
class MisorderedSpin final : public SyncProtocol {
 public:
  MisorderedSpin(const TaskSystem& system, const PriorityTables& tables,
                 SpinOrder claimed)
      : claimed_(claimed), sems_(system.resources().size()) {
    for (const Task& t : system.tasks()) {
      for (const CriticalSection& cs : t.sections) {
        if (cs.parent >= 0) {
          throw ConfigError(strf("spin protocols forbid nested critical "
                                 "sections (", t.name, ")"));
        }
      }
    }
    std::int32_t max_urgency = 0;
    for (const Task& t : system.tasks()) {
      max_urgency = std::max(max_urgency, t.priority.urgency());
    }
    np_priority_ = Priority(max_urgency + 1).inGlobalBand(tables.globalBase());
    reserveSemQueues(sems_, 2 * system.tasks().size());
  }

  LockOutcome onLock(Job& j, ResourceId r) override {
    SemState& s = sems_[static_cast<std::size_t>(r.value())];
    if (s.holder == &j) return LockOutcome::kGranted;
    if (s.holder == nullptr) {
      s.holder = &j;
      engine_->noteGlobalHolder(r, &j);
      j.elevated = np_priority_;
      engine_->notePriorityChanged(j);
      engine_->emit({.kind = Ev::kGcsEnter, .job = j.id,
                     .processor = j.current, .resource = r,
                     .priority = j.elevated});
      return LockOutcome::kGranted;
    }
    if (j.spinning) return LockOutcome::kSpinning;
    // Key everything equal: grant order is decided at V() time below.
    s.queue.push(&j, Priority(0));
    j.elevated = np_priority_;
    engine_->notePriorityChanged(j);
    engine_->emit({.kind = Ev::kGcsEnter, .job = j.id, .processor = j.current,
                   .resource = r, .priority = j.elevated});
    engine_->parkSpinning(j, r, s.holder->id);
    return LockOutcome::kSpinning;
  }

  void onUnlock(Job& j, ResourceId r) override {
    SemState& s = sems_[static_cast<std::size_t>(r.value())];
    MPCP_CHECK(s.holder == &j,
               j.id << " releasing " << r << " it does not hold");
    if (j.spinning) engine_->noteSpinGranted(j);
    j.elevated = kPriorityFloor;
    engine_->notePriorityChanged(j);
    engine_->emit({.kind = Ev::kGcsExit, .job = j.id, .processor = j.current,
                   .resource = r, .priority = j.base});
    if (s.queue.empty()) {
      s.holder = nullptr;
      engine_->noteGlobalHolder(r, nullptr);
      engine_->emit({.kind = Ev::kUnlock, .job = j.id, .processor = j.current,
                     .resource = r});
      return;
    }
    Job* next = claimed_ == SpinOrder::kFifo
                    ? s.queue.entries().back().value  // LIFO: newest wins
                    : s.queue.pop();  // arrival order (keys all equal)
    if (claimed_ == SpinOrder::kFifo) s.queue.remove(next);
    s.holder = next;
    engine_->noteGlobalHolder(r, next);
    engine_->counters().res(r).handoffs++;
    engine_->emit({.kind = Ev::kHandoff, .job = j.id, .processor = j.current,
                   .resource = r, .other = next->id});
    engine_->noteSpinGranted(*next);
  }

  [[nodiscard]] const char* name() const override {
    return claimed_ == SpinOrder::kFifo ? "spin-fifo[lifo-grant]"
                                        : "spin-prio[fifo-grant]";
  }

 private:
  SpinOrder claimed_;
  Priority np_priority_;
  std::vector<SemState> sems_;
};

}  // namespace

const char* toString(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kGcsCeilingBase: return "gcs-ceiling-base";
    case Mutation::kSpinFifoLifo: return "spin-fifo-lifo";
    case Mutation::kSpinPrioFifo: return "spin-prio-fifo";
  }
  return "?";
}

std::optional<Mutation> mutationFromName(const std::string& s) {
  for (const Mutation m : allMutations()) {
    if (s == toString(m)) return m;
  }
  if (s == "none") return Mutation::kNone;
  return std::nullopt;
}

const std::vector<Mutation>& allMutations() {
  static const std::vector<Mutation> kAll = {Mutation::kGcsCeilingBase,
                                             Mutation::kSpinFifoLifo,
                                             Mutation::kSpinPrioFifo};
  return kAll;
}

const char* mutationTarget(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "";
    case Mutation::kGcsCeilingBase: return "mpcp";
    case Mutation::kSpinFifoLifo: return "spin-fifo";
    case Mutation::kSpinPrioFifo: return "spin-prio";
  }
  return "";
}

std::unique_ptr<SyncProtocol> makeMutatedProtocol(
    Mutation m, const TaskSystem& system, const PriorityTables& tables) {
  switch (m) {
    case Mutation::kNone:
      return std::make_unique<MpcpProtocol>(system, tables);
    case Mutation::kGcsCeilingBase:
      return std::make_unique<GcsBaseFlippedMpcp>(system, tables);
    case Mutation::kSpinFifoLifo:
      return std::make_unique<MisorderedSpin>(system, tables,
                                              SpinOrder::kFifo);
    case Mutation::kSpinPrioFifo:
      return std::make_unique<MisorderedSpin>(system, tables,
                                              SpinOrder::kPriority);
  }
  throw ConfigError("unknown mutation");
}

}  // namespace mpcp::fuzz
