#include "fuzz/mutations.h"

#include "common/check.h"
#include "core/mpcp_protocol.h"
#include "protocols/local_pcp.h"
#include "protocols/sem_state.h"
#include "sim/engine.h"

namespace mpcp::fuzz {

namespace {

/// MpcpProtocol with the gcs elevation de-based: rule 3 assigns
/// gcsPriority(S, host) - P_G, i.e. the highest remote-user priority in
/// the *normal* band. Everything else (queueing, handoff, local PCP) is
/// untouched, so only the ceiling-band oracles can tell the difference.
class GcsBaseFlippedMpcp final : public SyncProtocol {
 public:
  GcsBaseFlippedMpcp(const TaskSystem& system, const PriorityTables& tables)
      : system_(&system),
        tables_(&tables),
        local_(system, tables),
        global_(system.resources().size()) {}

  void attach(Engine& engine) override {
    SyncProtocol::attach(engine);
    local_.attach(engine);
  }

  LockOutcome onLock(Job& j, ResourceId r) override {
    if (!system_->isGlobal(r)) return local_.onLock(j, r);

    SemState& s = global_[static_cast<std::size_t>(r.value())];
    if (s.holder == &j) return LockOutcome::kGranted;
    if (s.holder == nullptr) {
      s.holder = &j;
      j.elevated = flippedElevation(j, r);
      engine_->notePriorityChanged(j);
      engine_->emit({.kind = Ev::kGcsEnter, .job = j.id, .processor = j.host,
                     .resource = r, .priority = j.elevated});
      return LockOutcome::kGranted;
    }
    s.queue.push(&j, j.base);
    engine_->parkWaiting(j, r, s.holder->id);
    return LockOutcome::kWaiting;
  }

  void onUnlock(Job& j, ResourceId r) override {
    if (!system_->isGlobal(r)) {
      local_.onUnlock(j, r);
      return;
    }
    SemState& s = global_[static_cast<std::size_t>(r.value())];
    MPCP_CHECK(s.holder == &j,
               j.id << " releasing " << r << " it does not hold");
    j.elevated = kPriorityFloor;
    engine_->notePriorityChanged(j);
    engine_->emit({.kind = Ev::kGcsExit, .job = j.id, .processor = j.current,
                   .resource = r, .priority = j.base});
    if (s.queue.empty()) {
      s.holder = nullptr;
      engine_->emit({.kind = Ev::kUnlock, .job = j.id, .processor = j.current,
                     .resource = r});
      return;
    }
    Job* next = s.queue.pop();
    s.holder = next;
    next->elevated = flippedElevation(*next, r);
    engine_->emit({.kind = Ev::kHandoff, .job = j.id, .processor = j.current,
                   .resource = r, .other = next->id});
    engine_->emit({.kind = Ev::kGcsEnter, .job = next->id,
                   .processor = next->host, .resource = r,
                   .priority = next->elevated});
    engine_->wake(*next);
  }

  void onJobFinished(Job& j) override { local_.onJobFinished(j); }
  [[nodiscard]] const char* name() const override {
    return "mpcp[gcs-ceiling-base]";
  }

 private:
  [[nodiscard]] Priority flippedElevation(const Job& j, ResourceId r) const {
    return Priority(tables_->gcsPriority(r, j.host).urgency() -
                    tables_->globalBase().urgency());
  }

  const TaskSystem* system_;
  const PriorityTables* tables_;
  LocalPcp local_;
  std::vector<SemState> global_;
};

}  // namespace

const char* toString(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kGcsCeilingBase: return "gcs-ceiling-base";
  }
  return "?";
}

std::optional<Mutation> mutationFromName(const std::string& s) {
  for (const Mutation m : allMutations()) {
    if (s == toString(m)) return m;
  }
  if (s == "none") return Mutation::kNone;
  return std::nullopt;
}

const std::vector<Mutation>& allMutations() {
  static const std::vector<Mutation> kAll = {Mutation::kGcsCeilingBase};
  return kAll;
}

std::unique_ptr<SyncProtocol> makeMpcpWithMutation(
    Mutation m, const TaskSystem& system, const PriorityTables& tables) {
  switch (m) {
    case Mutation::kNone:
      return std::make_unique<MpcpProtocol>(system, tables);
    case Mutation::kGcsCeilingBase:
      return std::make_unique<GcsBaseFlippedMpcp>(system, tables);
  }
  throw ConfigError("unknown mutation");
}

}  // namespace mpcp::fuzz
