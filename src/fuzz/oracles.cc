#include "fuzz/oracles.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string_view>
#include <utility>

#include "common/check.h"
#include "common/strf.h"
#include "core/simulate.h"
#include "fuzz/protocols.h"
#include "sim/reference_mpcp.h"
#include "sim/reference_spin.h"
#include "trace/invariants.h"

namespace mpcp::fuzz {

namespace {

using FinishMap = std::map<std::pair<std::int32_t, std::int64_t>, Time>;

FinishMap finishMapOf(const SimResult& r) {
  FinishMap out;
  for (const JobRecord& jr : r.jobs) {
    out[{jr.id.task.value(), jr.id.instance}] = jr.finish;
  }
  return out;
}

/// First divergence between two finish maps; nullopt when identical.
std::optional<std::string> diffFinishes(const TaskSystem& sys,
                                        const FinishMap& a, const char* la,
                                        const FinishMap& b, const char* lb) {
  if (a.size() != b.size()) {
    return strf(la, " released ", a.size(), " jobs, ", lb, " released ",
                b.size());
  }
  for (const auto& [key, fa] : a) {
    const auto it = b.find(key);
    if (it == b.end()) {
      return strf(sys.task(TaskId(key.first)).name, "#", key.second,
                  " missing under ", lb);
    }
    if (it->second != fa) {
      return strf(sys.task(TaskId(key.first)).name, "#", key.second,
                  " finishes at t=", fa, " under ", la, " but t=", it->second,
                  " under ", lb);
    }
  }
  return std::nullopt;
}

Duration maxBlockedOf(const SimResult& r, TaskId t) {
  Duration worst = 0;
  for (const JobRecord& jr : r.jobs) {
    if (jr.id.task == t) worst = std::max(worst, jr.blocked);
  }
  return worst;
}

void addReport(std::vector<OracleFailure>& out, const std::string& protocol,
               const char* oracle, const InvariantReport& report) {
  if (report.ok()) return;
  out.push_back({protocol, strf("invariant:", oracle),
                 strf(report.violations.front(), " (+",
                      report.violations.size() - 1, " more)")});
}

/// Spin protocols never suspend on a lock: between a job's kLockWait and
/// the matching kLockGrant it busy-waits non-preemptively, so NO other
/// job may execute on that processor. Audited against the Gantt segments
/// (per processor the spin windows are disjoint and close in time order,
/// so each window list stays sorted and binary-searchable).
std::optional<std::string> spinYieldViolation(const TaskSystem& sys,
                                              const SimResult& sim) {
  struct Window {
    Time begin, end;
    JobId job;
    ResourceId resource;
  };
  std::vector<std::vector<Window>> per_proc(
      static_cast<std::size_t>(sys.processorCount()));
  std::map<std::pair<std::int32_t, std::int64_t>, Window> open;
  for (const TraceEvent& e : sim.trace) {
    const auto key = std::make_pair(e.job.task.value(), e.job.instance);
    if (e.kind == Ev::kLockWait) {
      open[key] = {e.t, -1, e.job, e.resource};
    } else if (e.kind == Ev::kLockGrant) {
      const auto it = open.find(key);
      if (it == open.end() || it->second.resource != e.resource) continue;
      it->second.end = e.t;
      per_proc[static_cast<std::size_t>(e.processor.value())].push_back(
          it->second);
      open.erase(it);
    }
  }
  for (auto& [key, w] : open) {  // spinning at the horizon: still a window
    w.end = sim.horizon;
    // The spinner kept its processor the whole time; look it up via the
    // task binding (the job never migrates while spinning).
    per_proc[static_cast<std::size_t>(
                 sys.task(TaskId(key.first)).processor.value())]
        .push_back(w);
  }
  for (const ExecSegment& seg : sim.segments) {
    const auto& windows =
        per_proc[static_cast<std::size_t>(seg.processor.value())];
    // First window ending after this segment starts (sorted, disjoint).
    auto it = std::partition_point(
        windows.begin(), windows.end(),
        [&](const Window& w) { return w.end <= seg.begin; });
    for (; it != windows.end() && it->begin < seg.end; ++it) {
      if (it->job == seg.job) continue;
      return strf(seg.job, " executed on ", seg.processor, " at [",
                  std::max(seg.begin, it->begin), ", ",
                  std::min(seg.end, it->end), ") while ", it->job,
                  " was spinning for ", it->resource,
                  " — spinners must never yield");
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<OracleFailure> checkSystem(const TaskSystem& system,
                                       const OracleOptions& options) {
  std::vector<OracleFailure> failures;
  const std::vector<std::string>& selected =
      options.protocols.empty() ? protocolNames() : options.protocols;
  const auto wants = [&](const std::string& name) {
    return std::find(selected.begin(), selected.end(), name) != selected.end();
  };

  const SimConfig config{.horizon_cap = options.horizon_cap};
  const PriorityTables tables(system);
  std::map<std::string, SimResult> runs;  // applicable protocols only

  // Per-protocol runs: invariants (a) + soundness (b).
  for (const std::string& name : protocolNames()) {
    if (!wants(name)) continue;
    std::optional<SimResult> sim;
    try {
      sim = tryRunProtocol(name, system, config, options.mutation);
    } catch (const InvariantError& e) {
      failures.push_back({name, "crash:invariant", e.what()});
      continue;
    }
    if (!sim.has_value()) continue;  // protocol rejects this system shape

    // (a) trace invariants.
    addReport(failures, name, "mutual-exclusion",
              checkMutualExclusion(system, *sim));
    if (name != "none" && name != "pip" && name != "spin-fifo") {
      // FIFO queues ("none", "spin-fifo") order by arrival; PIP waiters
      // can be boosted above their assigned priority, so the
      // assigned-priority handoff audit applies to none of them.
      addReport(failures, name, "priority-handoff",
                checkPriorityOrderedHandoff(system, *sim));
    }
    if (name == "spin-fifo" || name == "spin-prio") {
      if (const auto v = spinYieldViolation(system, *sim)) {
        failures.push_back({name, "invariant:spin-never-yields", *v});
      }
    }
    if (name == "mpcp") {
      addReport(failures, name, "gcs-preemption",
                checkGcsPreemptionRule(system, *sim));
      addReport(failures, name, "gcs-priority",
                checkGcsPriorityAssignment(system, *sim, tables,
                                           GcsPriorityRule::kSharedMemory));
    }
    if (name == "dpcp") {
      addReport(failures, name, "gcs-priority",
                checkGcsPriorityAssignment(system, *sim, tables,
                                           GcsPriorityRule::kMessageBased));
    }

    // (b) soundness: the *correct* protocol's analysis vs this run.
    if (const auto analysis = tryAnalyzeProtocol(name, system)) {
      const bool accepted =
          analysis->report.rta_all || analysis->report.ll_all;
      if (accepted && sim->any_deadline_miss) {
        failures.push_back(
            {name, "soundness:accepted-but-missed",
             "analysis declared the system schedulable but the simulation "
             "missed a deadline"});
      }
      if (!sim->any_deadline_miss) {
        for (const Task& t : system.tasks()) {
          const Duration bound =
              analysis->blocking[static_cast<std::size_t>(t.id.value())];
          const Duration observed = maxBlockedOf(*sim, t.id);
          if (observed > bound) {
            failures.push_back(
                {name, "soundness:blocking-bound",
                 strf(t.name, " observed blocking ", observed,
                      " exceeds the analytical bound ", bound)});
            break;  // one exceedance identifies the run; keep output small
          }
        }
      }
    }

    runs.emplace(name, std::move(*sim));
  }

  if (!options.cross_checks) return failures;

  // (c) cross-implementation differentials.
  if (runs.count("mpcp") != 0) {
    // Engine vs the independent tick-stepped reference, same short horizon.
    try {
      const auto engine_small =
          tryRunProtocol("mpcp", system,
                         SimConfig{.horizon = options.differential_horizon,
                                   .record_trace = false},
                         options.mutation);
      if (engine_small.has_value()) {
        const ReferenceResult ref =
            simulateMpcpReference(system, options.differential_horizon);
        FinishMap ref_map;
        for (const ReferenceJobResult& rj : ref.jobs) {
          ref_map[{rj.id.task.value(), rj.id.instance}] = rj.finish;
        }
        if (const auto diff = diffFinishes(system, finishMapOf(*engine_small),
                                           "engine", ref_map, "reference")) {
          failures.push_back({"mpcp", "cross:reference-mpcp", *diff});
        }
      }
    } catch (const InvariantError& e) {
      failures.push_back({"mpcp", "crash:invariant", e.what()});
    }

    // hybrid(all-shared) must equal MPCP job-for-job.
    try {
      const SimResult hyb =
          simulateHybrid(system, HybridPolicy::allShared(system), config);
      if (const auto diff =
              diffFinishes(system, finishMapOf(runs.at("mpcp")), "mpcp",
                           finishMapOf(hyb), "hybrid(all-shared)")) {
        failures.push_back({"mpcp", "cross:hybrid-shared", *diff});
      }
    } catch (const ConfigError&) {
    } catch (const InvariantError& e) {
      failures.push_back({"hybrid", "crash:invariant", e.what()});
    }
  }

  // Engine vs the independent tick-stepped spin reference. The small
  // engine run repeats any mutation, so a mis-granting spin variant shows
  // up here as a schedule divergence.
  for (const char* sname : {"spin-fifo", "spin-prio"}) {
    if (runs.count(sname) == 0) continue;
    try {
      const auto engine_small =
          tryRunProtocol(sname, system,
                         SimConfig{.horizon = options.differential_horizon,
                                   .record_trace = false},
                         options.mutation);
      if (engine_small.has_value()) {
        const ReferenceResult ref = simulateSpinReference(
            system, options.differential_horizon,
            std::string_view(sname) == "spin-prio");
        FinishMap ref_map;
        for (const ReferenceJobResult& rj : ref.jobs) {
          ref_map[{rj.id.task.value(), rj.id.instance}] = rj.finish;
        }
        if (const auto diff = diffFinishes(system, finishMapOf(*engine_small),
                                           "engine", ref_map, "reference")) {
          failures.push_back({sname, "cross:reference-spin", *diff});
        }
      }
    } catch (const InvariantError& e) {
      failures.push_back({sname, "crash:invariant", e.what()});
    }
  }

  if (runs.count("dpcp") != 0) {
    // hybrid(all-message) must equal DPCP job-for-job.
    try {
      const SimResult hyb =
          simulateHybrid(system, HybridPolicy::allMessage(system), config);
      if (const auto diff =
              diffFinishes(system, finishMapOf(runs.at("dpcp")), "dpcp",
                           finishMapOf(hyb), "hybrid(all-message)")) {
        failures.push_back({"dpcp", "cross:hybrid-message", *diff});
      }
    } catch (const ConfigError&) {
    } catch (const InvariantError& e) {
      failures.push_back({"hybrid", "crash:invariant", e.what()});
    }
  }

  if (!system.hasGlobalResources()) {
    // With no globals every ceiling protocol degenerates to local PCP, so
    // PCP / MPCP / DPCP must produce the identical schedule.
    const char* kAgree[] = {"pcp", "mpcp", "dpcp"};
    for (int i = 0; i + 1 < 3; ++i) {
      const auto a = runs.find(kAgree[i]);
      const auto b = runs.find(kAgree[i + 1]);
      if (a == runs.end() || b == runs.end()) continue;
      if (const auto diff =
              diffFinishes(system, finishMapOf(a->second), kAgree[i],
                           finishMapOf(b->second), kAgree[i + 1])) {
        failures.push_back({strf(kAgree[i], "+", kAgree[i + 1]),
                            "cross:no-global-agreement", *diff});
      }
    }
  }

  return failures;
}

std::vector<FaultPolicy> faultPolicies(const FaultOracleOptions& options) {
  using fault::ContainmentConfig;
  using fault::MissAction;
  std::vector<FaultPolicy> out;
  out.push_back({"none", ContainmentConfig{}});
  ContainmentConfig watchdog;
  watchdog.holder_watchdog = options.watchdog_timeout;
  out.push_back({"watchdog", watchdog});
  ContainmentConfig budget;
  budget.budget_enforce = true;
  budget.grace = options.grace;
  out.push_back({"budget-enforce", budget});
  ContainmentConfig abort_job;
  abort_job.on_miss = MissAction::kAbortJob;
  out.push_back({"job-abort", abort_job});
  ContainmentConfig skip;
  skip.on_miss = MissAction::kSkipNextRelease;
  out.push_back({"skip-next-release", skip});
  return out;
}

std::vector<OracleFailure> checkSystemFaults(const TaskSystem& system,
                                             const fault::FaultPlan& plan,
                                             const FaultOracleOptions& options) {
  std::vector<OracleFailure> failures;

  // Policy sweep: MPCP + plan under each containment policy. Whatever the
  // faults do, semaphore state must stay coherent (mutual exclusion) and
  // every handoff — including forced releases and budget kills — must go
  // to the highest-priority waiter.
  for (const FaultPolicy& policy : faultPolicies(options)) {
    SimConfig config{.horizon_cap = options.horizon_cap};
    config.fault_plan = &plan;
    config.containment = policy.config;
    std::optional<SimResult> sim;
    try {
      sim = tryRunProtocol("mpcp", system, config);
    } catch (const InvariantError& e) {
      failures.push_back(
          {"mpcp", "fault:crash", strf("policy ", policy.name, ": ", e.what())});
      continue;
    }
    if (!sim.has_value()) return failures;  // MPCP rejects this system shape

    const InvariantReport mutex = checkMutualExclusion(system, *sim);
    if (!mutex.ok()) {
      failures.push_back({"mpcp", "fault:mutual-exclusion",
                          strf("policy ", policy.name, ": ",
                               mutex.violations.front())});
    }
    const InvariantReport handoff = checkPriorityOrderedHandoff(system, *sim);
    if (!handoff.ok()) {
      failures.push_back({"mpcp", "fault:priority-handoff",
                          strf("policy ", policy.name, ": ",
                               handoff.violations.front())});
    }
  }

  // Neutrality: with NO plan, containment machinery that cannot trigger
  // (budget at grace 1.0, a watchdog that never times out) must leave the
  // schedule byte-identical to a plain run.
  try {
    const auto plain = tryRunProtocol(
        "mpcp", system,
        SimConfig{.horizon_cap = options.horizon_cap, .record_trace = false});
    if (plain.has_value()) {
      const FinishMap plain_map = finishMapOf(*plain);
      fault::ContainmentConfig inert_budget;
      inert_budget.budget_enforce = true;
      inert_budget.grace = 1.0;
      fault::ContainmentConfig inert_watchdog;
      inert_watchdog.holder_watchdog = kTimeInfinity;
      const std::pair<const char*, fault::ContainmentConfig> inert[] = {
          {"budget(grace=1)", inert_budget}, {"watchdog(inf)", inert_watchdog}};
      for (const auto& [label, cc] : inert) {
        SimConfig config{.horizon_cap = options.horizon_cap,
                         .record_trace = false};
        config.containment = cc;
        const auto guarded = tryRunProtocol("mpcp", system, config);
        if (!guarded.has_value()) continue;
        if (const auto diff = diffFinishes(system, plain_map, "plain",
                                           finishMapOf(*guarded), label)) {
          failures.push_back({"mpcp", "fault:neutral-containment",
                              strf(label, ": ", *diff)});
        }
      }
    }
  } catch (const InvariantError& e) {
    failures.push_back({"mpcp", "fault:crash", e.what()});
  }

  // Differential under faults: the reference simulator mirrors every
  // fault class except processor stalls, so for mirrorable plans the
  // engine under policy "none" must still agree with it tick for tick.
  if (plan.mirrorable()) {
    try {
      SimConfig config{.horizon = options.differential_horizon,
                       .record_trace = false};
      config.fault_plan = &plan;
      const auto engine_small = tryRunProtocol("mpcp", system, config);
      if (engine_small.has_value()) {
        const ReferenceResult ref =
            simulateMpcpReference(system, options.differential_horizon, &plan);
        FinishMap ref_map;
        for (const ReferenceJobResult& rj : ref.jobs) {
          ref_map[{rj.id.task.value(), rj.id.instance}] = rj.finish;
        }
        if (const auto diff =
                diffFinishes(system, finishMapOf(*engine_small), "engine",
                             ref_map, "reference")) {
          failures.push_back({"mpcp", "fault:cross-reference", *diff});
        }
      }
    } catch (const ConfigError&) {
    } catch (const InvariantError& e) {
      failures.push_back({"mpcp", "fault:crash", e.what()});
    }
  }

  return failures;
}

}  // namespace mpcp::fuzz
