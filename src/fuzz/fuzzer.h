// The generator-driven fuzz loop.
//
// Each run index i derives Rng(seed + i) (the SweepRunner convention, so
// results are independent of thread count), draws randomized
// WorkloadParams, generates a task system via src/taskgen/, and feeds it
// to the oracle families in fuzz/oracles.h. Findings are shrunk
// (fuzz/shrink.h) and serialized as self-contained repro files
// (fuzz/repro.h).
//
// Runs fan out across exp::SweepRunner (MPCP_THREADS) in batches; the
// wall-clock budget is checked between batches only, and per-run results
// are folded in run order, so the set of *reported* findings for a given
// (--runs, --seed) is deterministic at any thread count when no time
// budget cuts the loop short.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fuzz/mutations.h"
#include "fuzz/oracles.h"
#include "obs/counters.h"
#include "taskgen/generator.h"

namespace mpcp::fuzz {

struct FuzzOptions {
  int runs = 200;
  std::uint64_t seed = 1;
  /// Wall-clock budget in seconds; 0 = unlimited (run all `runs`).
  double time_budget_s = 0;
  /// Protocols to exercise; empty = the full registry.
  std::vector<std::string> protocols;
  Mutation mutation = Mutation::kNone;
  /// Directory for emitted repro files; empty = current directory.
  std::string corpus_dir;
  bool shrink = true;
  int max_shrink_evaluations = 300;
  Time horizon_cap = 200'000;
  Time differential_horizon = 1'200;
  /// Stop after this many findings (each one costs a shrink).
  int max_findings = 8;
  /// Fault-injection mode: draw a random FaultPlan per run and check the
  /// fault:* containment oracles instead of the differential families.
  /// Shrinking is disabled (the plan's task/resource references pin the
  /// system), and the plan is recorded in the repro file.
  bool faults = false;
  int fault_count = 2;          ///< specs per random plan
  double fault_grace = 1.0;     ///< budget-enforce grace multiplier
  Duration fault_watchdog = 500;  ///< holder-watchdog timeout (ticks)
  /// Campaign mode (ISSUE 5): journal every run to this file so a killed
  /// campaign resumes with --resume, skipping completed run indices, and
  /// findings dedupe by crash signature (oracle + shrunk-system hash)
  /// across the whole campaign — a rediscovered bug is counted, not
  /// re-shrunk or re-written. Empty = classic one-shot mode, whose output
  /// is byte-identical to pre-campaign builds.
  std::string campaign_path;
  bool resume = false;
  /// Fleet mode (ISSUE 9): when fleet_workers > 0 or fleet_listen is
  /// set, run indices are sharded across mpcp_worker processes via the
  /// campaign fabric. Workers do the generate+oracle half; journaling,
  /// shrinking, dedupe, and repro writing stay on the coordinator, so
  /// resume semantics match the serial campaign. Requires campaign_path;
  /// time_budget_s is unsupported (the CLI rejects the combination).
  int fleet_workers = 0;
  std::string fleet_listen;
  std::string fleet_worker_bin;
  std::string fleet_shard_dir;  ///< worker logs + default unix socket
  int fleet_heartbeat_ms = 500;
  int fleet_lease_deadline_ms = 60000;  ///< must exceed the slowest run
  int fleet_grace_ms = 3000;  ///< degrade to in-process after this long
  /// Chaos schedule text (exec/fabric/chaos.h grammar); empty = off.
  std::string fleet_chaos;
};

struct FuzzFinding {
  int run_index = 0;
  std::uint64_t derived_seed = 0;  ///< seed + run_index
  OracleFailure failure;           ///< first failure of the run
  int tasks_before = 0;            ///< task count pre-shrink
  int tasks_after = 0;             ///< task count post-shrink
  int shrink_evaluations = 0;
  std::string repro_text;          ///< writeRepro() of the shrunk case
  std::string repro_path;          ///< file written ("" if writing failed)
};

struct FuzzReport {
  int runs_executed = 0;
  int systems_with_findings = 0;
  std::vector<FuzzFinding> findings;
  double elapsed_s = 0;
  bool budget_exhausted = false;  ///< time budget ended the loop early
  // Campaign-mode bookkeeping (zero in one-shot mode).
  int resumed_skips = 0;       ///< run indices satisfied from the journal
  int previous_findings = 0;   ///< distinct findings recorded by prior runs
  int duplicate_findings = 0;  ///< findings deduped by crash signature
  std::uint64_t journal_corrupt_lines = 0;  ///< CRC-bad lines skipped
  bool interrupted = false;    ///< SIGINT/SIGTERM ended the loop early
  obs::FleetCounters fleet;    ///< fleet-mode bookkeeping (zero otherwise)
};

/// Runs the loop; progress and findings go to `log`.
[[nodiscard]] FuzzReport runFuzz(const FuzzOptions& options,
                                 std::ostream& log);

/// Campaign dedupe key: "<protocol>:<oracle>@<fnv1a64 of system_text>".
/// Two findings with the same signature are the same bug for campaign
/// accounting — same oracle tripped by the same (shrunk) system.
[[nodiscard]] std::string findingSignature(const std::string& protocol,
                                           const std::string& oracle,
                                           const std::string& system_text);

/// The per-run parameter draw, exposed for tests: deterministic in `rng`.
[[nodiscard]] WorkloadParams drawWorkloadParams(Rng& rng);

}  // namespace mpcp::fuzz
