#include "fuzz/shrink.h"

#include <utility>

#include "common/check.h"

namespace mpcp::fuzz {

namespace {

Body bodyFromOps(const std::vector<Op>& ops) {
  Body body;
  for (const Op& op : ops) {
    if (const auto* c = std::get_if<ComputeOp>(&op)) {
      body.compute(c->duration);
    } else if (const auto* s = std::get_if<SuspendOp>(&op)) {
      body.suspend(s->duration);
    } else if (const auto* l = std::get_if<LockOp>(&op)) {
      body.lock(l->resource);
    } else if (const auto* u = std::get_if<UnlockOp>(&op)) {
      body.unlock(u->resource);
    }
  }
  return body;
}

/// (lock index, unlock index) pairs of a well-formed op list, lock order.
std::vector<std::pair<std::size_t, std::size_t>> sectionPairs(
    const std::vector<Op>& ops) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<std::size_t> stack;  // indices into `pairs`
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (std::holds_alternative<LockOp>(ops[i])) {
      pairs.emplace_back(i, i);  // unlock index patched on close
      stack.push_back(pairs.size() - 1);
    } else if (std::holds_alternative<UnlockOp>(ops[i])) {
      if (stack.empty()) return {};  // malformed; nothing to offer
      pairs[stack.back()].second = i;
      stack.pop_back();
    }
  }
  return stack.empty() ? pairs : std::vector<std::pair<std::size_t, std::size_t>>{};
}

std::vector<Op> withoutIndices(const std::vector<Op>& ops, std::size_t a,
                               std::size_t b) {
  std::vector<Op> out;
  out.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i != a && i != b) out.push_back(ops[i]);
  }
  return out;
}

/// Shared driver: evaluates `candidate`; on success commits it to `work`.
class Shrinker {
 public:
  Shrinker(MutableSystem work, const StillViolates& violates, int budget)
      : work_(std::move(work)), violates_(violates), budget_(budget) {}

  bool tryCandidate(MutableSystem candidate) {
    if (result_.evaluations >= budget_) {
      result_.hit_budget = true;
      return false;
    }
    const auto built = candidate.tryBuild();
    if (!built.has_value()) return false;  // edit made the system invalid
    ++result_.evaluations;
    if (!violates_(*built)) return false;
    work_ = std::move(candidate);
    ++result_.accepted;
    return true;
  }

  [[nodiscard]] bool budgetLeft() const {
    return result_.evaluations < budget_ && !result_.hit_budget;
  }

  MutableSystem work_;
  ShrinkResult result_;

 private:
  const StillViolates& violates_;
  int budget_;
};

bool passDropTasks(Shrinker& s) {
  bool changed = false;
  for (std::size_t i = s.work_.tasks.size(); i-- > 0 && s.budgetLeft();) {
    if (s.work_.tasks.size() <= 1) break;
    MutableSystem candidate = s.work_;
    candidate.tasks.erase(candidate.tasks.begin() +
                          static_cast<std::ptrdiff_t>(i));
    changed |= s.tryCandidate(std::move(candidate));
  }
  return changed;
}

bool passDropSections(Shrinker& s) {
  bool changed = false;
  for (std::size_t t = 0; t < s.work_.tasks.size() && s.budgetLeft(); ++t) {
    // Re-list sections after every accepted edit; iterate back-to-front so
    // a rejected candidate leaves earlier pair indices valid.
    auto pairs = sectionPairs(s.work_.tasks[t].body.ops());
    for (std::size_t p = pairs.size(); p-- > 0 && s.budgetLeft();) {
      MutableSystem candidate = s.work_;
      candidate.tasks[t].body = bodyFromOps(withoutIndices(
          s.work_.tasks[t].body.ops(), pairs[p].first, pairs[p].second));
      if (s.tryCandidate(std::move(candidate))) {
        changed = true;
        pairs = sectionPairs(s.work_.tasks[t].body.ops());
        p = pairs.size();
      }
    }
  }
  return changed;
}

bool passDropSuspends(Shrinker& s) {
  bool changed = false;
  for (std::size_t t = 0; t < s.work_.tasks.size() && s.budgetLeft(); ++t) {
    const std::size_t initial_size = s.work_.tasks[t].body.ops().size();
    for (std::size_t i = initial_size; i-- > 0 && s.budgetLeft();) {
      if (i >= s.work_.tasks[t].body.ops().size()) continue;
      if (!std::holds_alternative<SuspendOp>(
              s.work_.tasks[t].body.ops()[i])) {
        continue;
      }
      MutableSystem candidate = s.work_;
      candidate.tasks[t].body = bodyFromOps(
          withoutIndices(s.work_.tasks[t].body.ops(), i, i));
      changed |= s.tryCandidate(std::move(candidate));
    }
  }
  return changed;
}

bool passHalveDurations(Shrinker& s) {
  bool changed = false;
  for (std::size_t t = 0; t < s.work_.tasks.size() && s.budgetLeft(); ++t) {
    for (std::size_t i = 0; i < s.work_.tasks[t].body.ops().size() &&
                            s.budgetLeft();
         ++i) {
      std::vector<Op> ops = s.work_.tasks[t].body.ops();
      Duration* d = nullptr;
      if (auto* c = std::get_if<ComputeOp>(&ops[i])) d = &c->duration;
      if (auto* sp = std::get_if<SuspendOp>(&ops[i])) d = &sp->duration;
      if (d == nullptr || *d <= 1) continue;
      *d /= 2;
      MutableSystem candidate = s.work_;
      candidate.tasks[t].body = bodyFromOps(ops);
      changed |= s.tryCandidate(std::move(candidate));
    }
  }
  return changed;
}

}  // namespace

MutableSystem MutableSystem::fromSystem(const TaskSystem& system) {
  MutableSystem m;
  m.processors = system.processorCount();
  m.options = system.options();
  for (const ResourceInfo& r : system.resources()) {
    m.resource_names.push_back(r.name);
    m.sync_pins.push_back(
        r.sync_processor.has_value() ? r.sync_processor->value() : -1);
  }
  for (const Task& t : system.tasks()) {
    TaskSpec spec;
    spec.name = t.name;
    spec.period = t.period;
    spec.phase = t.phase;
    spec.relative_deadline = t.relative_deadline;
    spec.processor = t.processor.value();
    spec.body = t.body;
    m.tasks.push_back(std::move(spec));
  }
  return m;
}

std::optional<TaskSystem> MutableSystem::tryBuild() const {
  try {
    TaskSystemBuilder builder(processors, options);
    for (std::size_t r = 0; r < resource_names.size(); ++r) {
      const ResourceId id = builder.addResource(resource_names[r]);
      if (sync_pins[r] >= 0) {
        builder.assignSyncProcessor(id, ProcessorId(sync_pins[r]));
      }
    }
    for (const TaskSpec& spec : tasks) builder.addTask(spec);
    return std::move(builder).build();
  } catch (const ConfigError&) {
    return std::nullopt;
  } catch (const InvariantError&) {
    return std::nullopt;
  }
}

ShrinkResult shrinkSystem(const TaskSystem& start,
                          const StillViolates& still_violates,
                          int max_evaluations) {
  MPCP_CHECK(still_violates(start),
             "shrinkSystem: the starting system does not violate the oracle");
  Shrinker s(MutableSystem::fromSystem(start), still_violates,
             max_evaluations);
  bool changed = true;
  while (changed && s.budgetLeft()) {
    changed = false;
    changed |= passDropTasks(s);
    changed |= passDropSections(s);
    changed |= passDropSuspends(s);
    changed |= passHalveDurations(s);
    ++s.result_.rounds;
  }
  const auto final_system = s.work_.tryBuild();
  MPCP_CHECK(final_system.has_value(),
             "shrinkSystem: accepted edits produced an unbuildable system");
  s.result_.system = *final_system;
  return s.result_;
}

}  // namespace mpcp::fuzz
