// The fuzzer's protocol registry: every synchronization protocol in the
// repo, addressable by name, with uniform "try to run / try to analyze"
// entry points that report inapplicability (e.g. PCP on a system with
// global resources, MPCP on nested global sections) instead of throwing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/hybrid_protocol.h"
#include "fuzz/mutations.h"
#include "model/task_system.h"
#include "sim/engine.h"
#include "sim/result.h"

namespace mpcp::fuzz {

/// Canonical fuzzing order — the protocol registry's registration order:
/// "none", "none-prio", "pip", "pcp", "mpcp", "dpcp", "hybrid",
/// "spin-fifo", "spin-prio". Fixed (append-only) so runs, reports and
/// corpus repro files stay deterministic.
[[nodiscard]] const std::vector<std::string>& protocolNames();
[[nodiscard]] bool protocolKnown(const std::string& name);

/// The fuzzer's deterministic mixed policy — the registry's canonical
/// hybrid policy: global resources alternate shared-memory /
/// message-based by resource id parity.
[[nodiscard]] HybridPolicy fuzzHybridPolicy(const TaskSystem& system);

/// Simulates `system` under the named protocol. A mutation applies only
/// to the protocol it targets (mutationTarget()); other protocols run
/// unmodified. Returns nullopt when the protocol rejects the system
/// (ConfigError at construction) — that is inapplicability, not a bug.
/// InvariantError (an engine/protocol internal check tripping) is NOT
/// caught: the caller reports it as a finding.
[[nodiscard]] std::optional<SimResult> tryRunProtocol(
    const std::string& name, const TaskSystem& system,
    const SimConfig& config, Mutation mutation = Mutation::kNone);

/// Analytical blocking bounds of the *correct* protocol where one exists
/// (the registry's `analyzable` flag: "pcp" without globals, "mpcp",
/// "dpcp", "hybrid", "spin-fifo", "spin-prio"); nullopt for protocols
/// without a bounded-blocking analysis or rejected systems.
[[nodiscard]] std::optional<ProtocolAnalysis> tryAnalyzeProtocol(
    const std::string& name, const TaskSystem& system);

}  // namespace mpcp::fuzz
