// The "fuzz-v1" fleet body (ISSUE 9): distributed fuzz campaigns.
//
// Workers run the expensive half of a fuzz run — generate the system,
// execute every oracle family — and ship the raw outcome back as the
// RESULT payload. The coordinator keeps all campaign state: journaling,
// shrinking, signature dedupe, and repro writing happen in one place,
// exactly as in the serial path, so a resumed fleet campaign and a
// serial campaign count findings the same way. (Unlike the sweep body,
// fleet fuzz results are folded in *arrival* order — the set of
// findings is deterministic per run index, but their report order can
// differ across worker counts.)
//
// Registration is explicit from main() (see exec/fabric/work.h for the
// registry rationale); this header lives in src/fuzz/ so the dependency
// arrow stays fuzz -> fabric.
#pragma once

#include <string>
#include <vector>

#include "fuzz/fuzzer.h"
#include "fuzz/oracles.h"

namespace mpcp::fuzz {

/// Wire form of one fleet fuzz run (decoded from a RESULT payload).
struct FuzzRunOutcome {
  std::vector<OracleFailure> failures;
  std::string system_text;      ///< serialized system when failures exist
  std::string fault_plan_text;  ///< formatPlan() in fault mode
};

/// Spec shipped in WELCOME: everything the worker needs to reproduce a
/// run index bit-exactly (seed, protocols, oracle knobs, fault knobs).
[[nodiscard]] std::string makeFuzzBodySpec(const FuzzOptions& options);

[[nodiscard]] std::string encodeFuzzRunOutcome(const FuzzRunOutcome& outcome);
/// False on a malformed payload (never throws).
[[nodiscard]] bool decodeFuzzRunOutcome(const std::string& payload,
                                        FuzzRunOutcome& out);

void registerFuzzFleetBody();

}  // namespace mpcp::fuzz
