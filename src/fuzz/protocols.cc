#include "fuzz/protocols.h"

#include <algorithm>

#include "common/check.h"
#include "core/protocol_factory.h"
#include "core/simulate.h"

namespace mpcp::fuzz {

namespace {

std::optional<ProtocolKind> kindOf(const std::string& name) {
  if (name == "none") return ProtocolKind::kNone;
  if (name == "none-prio") return ProtocolKind::kNonePrio;
  if (name == "pip") return ProtocolKind::kPip;
  if (name == "pcp") return ProtocolKind::kPcp;
  if (name == "mpcp") return ProtocolKind::kMpcp;
  if (name == "dpcp") return ProtocolKind::kDpcp;
  return std::nullopt;  // "hybrid" has no ProtocolKind
}

}  // namespace

const std::vector<std::string>& protocolNames() {
  static const std::vector<std::string> kNames = {
      "none", "none-prio", "pip", "pcp", "mpcp", "dpcp", "hybrid"};
  return kNames;
}

bool protocolKnown(const std::string& name) {
  const auto& names = protocolNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

HybridPolicy fuzzHybridPolicy(const TaskSystem& system) {
  HybridPolicy policy = HybridPolicy::allShared(system);
  for (const ResourceInfo& r : system.resources()) {
    if (r.scope == ResourceScope::kGlobal && r.id.value() % 2 == 1) {
      policy.set(r.id, GlobalPolicy::kMessageBased);
    }
  }
  return policy;
}

std::optional<SimResult> tryRunProtocol(const std::string& name,
                                        const TaskSystem& system,
                                        const SimConfig& config,
                                        Mutation mutation) {
  try {
    if (name == "hybrid") {
      return simulateHybrid(system, fuzzHybridPolicy(system), config);
    }
    if (name == "mpcp" && mutation != Mutation::kNone) {
      PriorityTables tables(system);
      auto protocol = makeMpcpWithMutation(mutation, system, tables);
      Engine engine(system, *protocol, config);
      return engine.run();
    }
    const auto kind = kindOf(name);
    if (!kind.has_value()) throw ConfigError("unknown protocol '" + name + "'");
    return simulate(*kind, system, config);
  } catch (const ConfigError&) {
    return std::nullopt;  // protocol rejects this system shape
  }
}

std::optional<ProtocolAnalysis> tryAnalyzeProtocol(const std::string& name,
                                                   const TaskSystem& system) {
  try {
    if (name == "hybrid") return analyzeHybrid(system, fuzzHybridPolicy(system));
    const auto kind = kindOf(name);
    if (!kind.has_value()) return std::nullopt;
    switch (*kind) {
      case ProtocolKind::kPcp:
      case ProtocolKind::kMpcp:
      case ProtocolKind::kDpcp:
        return analyzeUnder(*kind, system);
      default:
        return std::nullopt;  // no bounded-blocking analysis (Section 3.3)
    }
  } catch (const ConfigError&) {
    return std::nullopt;
  }
}

}  // namespace mpcp::fuzz
