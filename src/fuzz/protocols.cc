#include "fuzz/protocols.h"

#include "common/check.h"
#include "core/protocol_registry.h"
#include "core/simulate.h"

namespace mpcp::fuzz {

const std::vector<std::string>& protocolNames() {
  // The registry's registration order IS the canonical fuzzing order
  // (corpus repro files index protocols by this list).
  static const std::vector<std::string> kNames = protocolNameList();
  return kNames;
}

bool protocolKnown(const std::string& name) {
  return findProtocol(name) != nullptr;
}

HybridPolicy fuzzHybridPolicy(const TaskSystem& system) {
  return defaultHybridPolicy(system);
}

std::optional<SimResult> tryRunProtocol(const std::string& name,
                                        const TaskSystem& system,
                                        const SimConfig& config,
                                        Mutation mutation) {
  try {
    if (mutation != Mutation::kNone && name == mutationTarget(mutation)) {
      PriorityTables tables(system);
      auto protocol = makeMutatedProtocol(mutation, system, tables);
      Engine engine(system, *protocol, config);
      return engine.run();
    }
    return simulate(protocolKindFromName(name), system, config);
  } catch (const ConfigError&) {
    return std::nullopt;  // protocol rejects this system shape
  }
}

std::optional<ProtocolAnalysis> tryAnalyzeProtocol(const std::string& name,
                                                   const TaskSystem& system) {
  try {
    const ProtocolSpec* spec = findProtocol(name);
    if (spec == nullptr || !spec->analyzable) {
      return std::nullopt;  // no bounded-blocking analysis (Section 3.3)
    }
    return analyzeUnder(spec->kind, system);
  } catch (const ConfigError&) {
    return std::nullopt;
  }
}

}  // namespace mpcp::fuzz
