// Oracle families for the differential protocol fuzzer.
//
// Given one task system, checkSystem() runs every applicable protocol
// through sim::Engine and evaluates three oracle families:
//
//   (a) invariant:*  — post-hoc trace invariants (trace/invariants.*):
//       mutual exclusion everywhere; priority-ordered handoff for the
//       priority-queued protocols (spin-fifo is FIFO and exempt); Theorem
//       2 (gcs never preempted by non-cs code) and rule-3 gcs priority
//       assignment for MPCP; the message-based gcs priority rule for
//       DPCP; spin-never-yields for the spin protocols (no other job may
//       execute on a spinner's processor between its P() and the grant).
//   (b) soundness:*  — analysis vs observation (core/blocking.*,
//       analysis/blocking_*): an analysis-accepted system must not miss
//       deadlines, and in a miss-free run every job's observed blocking
//       must stay within its B_i bound.
//   (c) cross:*      — differential checks across implementations:
//       MPCP and the spin protocols vs their independent tick-stepped
//       reference simulators; hybrid(all-shared) ≡ MPCP and
//       hybrid(all-message) ≡ DPCP job finish times; and on systems with
//       no global resources, PCP, MPCP and DPCP must agree exactly (they
//       all reduce to local PCP).
//
// Plus "crash:*" when an internal MPCP_CHECK trips during simulation —
// an engine/protocol invariant failure is always a finding.
//
// Oracle ids are stable strings ("invariant:mutual-exclusion", ...); the
// shrinker uses them to preserve "violates the same oracle" while
// minimizing, and repro files record them.
#pragma once

#include <string>
#include <vector>

#include "fault/plan.h"
#include "fuzz/mutations.h"
#include "model/task_system.h"

namespace mpcp::fuzz {

struct OracleFailure {
  std::string protocol;  ///< registry name ("mpcp", "hybrid", ...)
  std::string oracle;    ///< stable id, e.g. "soundness:blocking-bound"
  std::string details;   ///< first violation, human-readable
};

struct OracleOptions {
  /// Protocols to exercise; empty = the full registry.
  std::vector<std::string> protocols;
  /// Fault injection (applies to the protocols the mutation targets).
  Mutation mutation = Mutation::kNone;
  /// Auto-horizon cap for the per-protocol runs.
  Time horizon_cap = 200'000;
  /// Horizon of the O(horizon x jobs) reference-simulator differential.
  Time differential_horizon = 1'200;
  /// Enable the cross-implementation family (c).
  bool cross_checks = true;
};

/// Runs all oracles; returns every failure, deterministically ordered.
[[nodiscard]] std::vector<OracleFailure> checkSystem(
    const TaskSystem& system, const OracleOptions& options = {});

// ---------------------------------------------------------------------
// Fault-injection mode (ISSUE 4): instead of comparing protocols against
// each other, run MPCP with a FaultPlan under every containment policy
// and check the properties that must survive *arbitrary* misbehavior:
//
//   fault:crash             — no MPCP_CHECK may trip, faults or not;
//   fault:mutual-exclusion  — a contained fault never corrupts semaphore
//                             state (two holders of one resource);
//   fault:priority-handoff  — forced releases and budget kills still hand
//                             off to the highest-priority waiter (rule 3);
//   fault:neutral-containment — inert policies (budget grace 1.0, a
//                             watchdog that can never fire) with NO plan
//                             are schedule-identical to a plain run;
//   fault:cross-reference   — for mirrorable plans, the engine under
//                             policy "none" matches the tick-stepped
//                             reference with the same plan.

struct FaultOracleOptions {
  Time horizon_cap = 200'000;
  /// Horizon of the engine-vs-reference differential under the plan.
  Time differential_horizon = 1'200;
  /// Grace multiplier for the budget-enforce policy run.
  double grace = 1.0;
  /// Timeout for the holder-watchdog policy run.
  Duration watchdog_timeout = 500;
};

/// One named containment policy exercised by the fault oracles.
struct FaultPolicy {
  std::string name;
  fault::ContainmentConfig config;
};

/// The fixed policy sweep ("none", "watchdog", "budget-enforce",
/// "job-abort", "skip-next-release"), parameterized by `options`.
/// Exposed so replay reports and tests fingerprint the same runs.
[[nodiscard]] std::vector<FaultPolicy> faultPolicies(
    const FaultOracleOptions& options);

/// Runs MPCP with `plan` under every containment policy and evaluates the
/// fault:* oracles above. Deterministically ordered.
[[nodiscard]] std::vector<OracleFailure> checkSystemFaults(
    const TaskSystem& system, const fault::FaultPlan& plan,
    const FaultOracleOptions& options = {});

}  // namespace mpcp::fuzz
