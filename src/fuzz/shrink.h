// Greedy repro minimization: given a task system that violates an oracle,
// repeatedly try structure-removing transformations — drop a task, drop a
// critical section (its lock/unlock pair), drop a suspension, halve a
// duration — and keep each one that still violates the *same* oracle.
// Runs passes to a fixpoint (or an evaluation budget), so shrunk corpus
// entries stay small enough to read and debug by hand.
//
// Rebuilding after each edit goes through TaskSystemBuilder, so derived
// facts (RM priorities, resource scopes, ceilings) are recomputed — a
// shrink step that turns a global resource local or reorders priorities
// is fine as long as the violation survives it.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "model/task.h"
#include "model/task_system.h"

namespace mpcp::fuzz {

/// Editable mirror of TaskSystemBuilder's inputs. Round-trips through
/// build(): priorities are left to rate-monotonic re-derivation (the same
/// caveat as model/serialize.h).
struct MutableSystem {
  int processors = 1;
  TaskSystemOptions options;
  std::vector<std::string> resource_names;
  /// Per-resource DPCP sync pin (processor index), -1 = none recorded.
  std::vector<int> sync_pins;
  std::vector<TaskSpec> tasks;

  [[nodiscard]] static MutableSystem fromSystem(const TaskSystem& system);
  /// Builds a TaskSystem; nullopt if the edit made it invalid (empty
  /// bodies, no tasks, ...), which the shrinker treats as "revert".
  [[nodiscard]] std::optional<TaskSystem> tryBuild() const;
};

/// Predicate: does this candidate system still violate the same oracle?
using StillViolates = std::function<bool(const TaskSystem&)>;

struct ShrinkResult {
  TaskSystem system;   ///< minimized system (== input if nothing shrank)
  int evaluations = 0; ///< candidate systems tested
  int accepted = 0;    ///< edits kept
  int rounds = 0;      ///< fixpoint passes executed
  bool hit_budget = false;
};

/// Minimizes `start` under `still_violates` (which must be true for
/// `start` itself; checked). `max_evaluations` bounds oracle re-runs so
/// shrinking stays deterministic and time-boxed without wall clocks.
[[nodiscard]] ShrinkResult shrinkSystem(const TaskSystem& start,
                                        const StillViolates& still_violates,
                                        int max_evaluations = 400);

}  // namespace mpcp::fuzz
