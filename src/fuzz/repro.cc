#include "fuzz/repro.h"

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/strf.h"
#include "fuzz/protocols.h"
#include "model/serialize.h"

namespace mpcp::fuzz {

namespace {

std::vector<std::string> splitProtocols(const std::string& field) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : field) {
    if (c == '+') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// FNV-1a over the job finish times — a compact schedule fingerprint for
/// byte-identical replay comparison.
std::uint64_t finishHash(const SimResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const JobRecord& jr : r.jobs) {
    mix(static_cast<std::uint64_t>(jr.id.task.value()));
    mix(static_cast<std::uint64_t>(jr.id.instance));
    mix(static_cast<std::uint64_t>(jr.finish));
  }
  return h;
}

}  // namespace

std::string writeRepro(const ReproCase& repro) {
  std::ostringstream os;
  os << "# mpcp_fuzz repro v1\n";
  os << "protocol " << repro.protocol << "\n";
  os << "oracle " << repro.oracle << "\n";
  if (repro.mutation != Mutation::kNone) {
    os << "mutation " << toString(repro.mutation) << "\n";
  }
  os << "seed " << repro.seed << "\n";
  os << "horizon-cap " << repro.horizon_cap << "\n";
  os << "differential-horizon " << repro.differential_horizon << "\n";
  if (!repro.fault_plan.empty()) {
    os << "fault-plan " << repro.fault_plan << "\n";
    os << "fault-grace " << repro.fault_grace << "\n";
    os << "fault-watchdog " << repro.fault_watchdog << "\n";
  }
  os << "system\n";
  serializeTaskSystem(os, repro.system);
  return os.str();
}

ReproCase parseRepro(const std::string& text) {
  ReproCase repro;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  bool saw_system = false;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    std::string line = hash == std::string::npos ? raw : raw.substr(0, hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    if (key == "system") {
      saw_system = true;
      break;
    }
    std::string value;
    if (!(ls >> value)) {
      throw ConfigError(
          strf("repro parse error at line ", line_no, ": '", key,
               "' needs a value"));
    }
    if (key == "protocol") {
      repro.protocol = value;
      for (const std::string& p : splitProtocols(value)) {
        if (!protocolKnown(p)) {
          throw ConfigError(strf("repro parse error at line ", line_no,
                                 ": unknown protocol '", p, "'"));
        }
      }
    } else if (key == "oracle") {
      repro.oracle = value;
    } else if (key == "mutation") {
      const auto m = mutationFromName(value);
      if (!m.has_value()) {
        throw ConfigError(strf("repro parse error at line ", line_no,
                               ": unknown mutation '", value, "'"));
      }
      repro.mutation = *m;
    } else if (key == "seed") {
      repro.seed = std::stoull(value);
    } else if (key == "horizon-cap") {
      repro.horizon_cap = std::stoll(value);
    } else if (key == "differential-horizon") {
      repro.differential_horizon = std::stoll(value);
    } else if (key == "fault-plan") {
      repro.fault_plan = value;  // validated against the system below
    } else if (key == "fault-grace") {
      repro.fault_grace = std::stod(value);
    } else if (key == "fault-watchdog") {
      repro.fault_watchdog = std::stoll(value);
    } else {
      throw ConfigError(strf("repro parse error at line ", line_no,
                             ": unknown header key '", key, "'"));
    }
  }
  if (!saw_system) {
    throw ConfigError("repro parse error: missing 'system' separator");
  }
  if (repro.protocol.empty()) {
    throw ConfigError("repro parse error: missing 'protocol' header");
  }
  std::ostringstream rest;
  rest << in.rdbuf();
  repro.system = parseTaskSystemFromString(rest.str());
  if (!repro.fault_plan.empty()) {
    // Fail loudly at load time, not mid-replay: the plan must resolve
    // against the recorded system.
    (void)fault::parsePlan(repro.fault_plan, repro.system);
  }
  return repro;
}

ReproCase loadReproFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open repro file '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return parseRepro(os.str());
}

bool ReplayOutcome::reproducesRecordedOracle(const ReproCase& r) const {
  for (const OracleFailure& f : failures) {
    if (f.oracle == r.oracle) return true;
  }
  return false;
}

namespace {

/// Fault-mode replay: re-run the fault:* oracle suite and fingerprint the
/// MPCP schedule under every containment policy.
ReplayOutcome replayFaults(const ReproCase& repro, bool with_plan) {
  const fault::FaultPlan full = fault::parsePlan(repro.fault_plan, repro.system);
  const fault::FaultPlan plan = with_plan ? full : fault::FaultPlan{};
  FaultOracleOptions options;
  options.horizon_cap = repro.horizon_cap;
  options.differential_horizon = repro.differential_horizon;
  options.grace = repro.fault_grace;
  options.watchdog_timeout = repro.fault_watchdog;

  ReplayOutcome outcome;
  outcome.failures = checkSystemFaults(repro.system, plan, options);

  std::ostringstream os;
  os << "replay fault-plan=" << (with_plan ? repro.fault_plan : "(none)")
     << " grace=" << repro.fault_grace
     << " watchdog=" << repro.fault_watchdog
     << " recorded-oracle=" << repro.oracle << "\n";
  os << "system tasks=" << repro.system.tasks().size()
     << " processors=" << repro.system.processorCount()
     << " resources=" << repro.system.resources().size() << "\n";
  // Per-policy schedule fingerprints — the bit-exactness witness.
  for (const FaultPolicy& policy : faultPolicies(options)) {
    SimConfig config{.horizon_cap = repro.horizon_cap};
    config.fault_plan = &plan;
    config.containment = policy.config;
    std::optional<SimResult> sim;
    try {
      sim = tryRunProtocol("mpcp", repro.system, config);
    } catch (const InvariantError& e) {
      os << "run mpcp/" << policy.name << ": crashed (" << e.what() << ")\n";
      continue;
    }
    if (!sim.has_value()) {
      os << "run mpcp/" << policy.name << ": not applicable\n";
      continue;
    }
    std::ostringstream hex;
    hex << std::hex << finishHash(*sim);
    os << "run mpcp/" << policy.name << ": jobs=" << sim->jobs.size()
       << " finish-hash=0x" << hex.str()
       << " deadline-miss=" << (sim->any_deadline_miss ? 1 : 0) << "\n";
  }
  os << "failures " << outcome.failures.size() << "\n";
  for (const OracleFailure& f : outcome.failures) {
    os << "  [" << f.protocol << "] " << f.oracle << ": " << f.details
       << "\n";
  }
  os << "verdict "
     << (outcome.failures.empty()
             ? "CLEAN"
             : outcome.reproducesRecordedOracle(repro)
                   ? "VIOLATION (recorded oracle reproduced)"
                   : "VIOLATION (different oracle)")
     << "\n";
  outcome.report = os.str();
  return outcome;
}

}  // namespace

ReplayOutcome replay(const ReproCase& repro, bool with_mutation) {
  if (!repro.fault_plan.empty()) return replayFaults(repro, with_mutation);
  OracleOptions options;
  options.protocols = splitProtocols(repro.protocol);
  options.mutation = with_mutation ? repro.mutation : Mutation::kNone;
  options.horizon_cap = repro.horizon_cap;
  options.differential_horizon = repro.differential_horizon;

  ReplayOutcome outcome;
  outcome.failures = checkSystem(repro.system, options);

  std::ostringstream os;
  os << "replay protocol=" << repro.protocol
     << " mutation=" << toString(options.mutation)
     << " recorded-oracle=" << repro.oracle << "\n";
  os << "system tasks=" << repro.system.tasks().size()
     << " processors=" << repro.system.processorCount()
     << " resources=" << repro.system.resources().size() << "\n";
  // Per-protocol schedule fingerprints — the bit-exactness witness.
  for (const std::string& name : options.protocols) {
    std::optional<SimResult> sim;
    try {
      sim = tryRunProtocol(name, repro.system,
                           SimConfig{.horizon_cap = repro.horizon_cap},
                           options.mutation);
    } catch (const InvariantError& e) {
      os << "run " << name << ": crashed (" << e.what() << ")\n";
      continue;
    }
    if (!sim.has_value()) {
      os << "run " << name << ": not applicable\n";
      continue;
    }
    std::ostringstream hex;
    hex << std::hex << finishHash(*sim);
    os << "run " << name << ": jobs=" << sim->jobs.size()
       << " finish-hash=0x" << hex.str()
       << " deadline-miss=" << (sim->any_deadline_miss ? 1 : 0) << "\n";
  }
  os << "failures " << outcome.failures.size() << "\n";
  for (const OracleFailure& f : outcome.failures) {
    os << "  [" << f.protocol << "] " << f.oracle << ": " << f.details
       << "\n";
  }
  os << "verdict "
     << (outcome.failures.empty()
             ? "CLEAN"
             : outcome.reproducesRecordedOracle(repro)
                   ? "VIOLATION (recorded oracle reproduced)"
                   : "VIOLATION (different oracle)")
     << "\n";
  outcome.report = os.str();
  return outcome;
}

}  // namespace mpcp::fuzz
