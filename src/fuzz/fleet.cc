#include "fuzz/fleet.h"

#include <charconv>

#include "common/check.h"
#include "common/strf.h"
#include "exec/fabric/work.h"
#include "exec/journal.h"
#include "fault/plan.h"
#include "model/serialize.h"

namespace mpcp::fuzz {

namespace {

/// Comma-joined with a trailing comma, the campaignFingerprint idiom —
/// "" stays "" so the spec token round-trips an empty protocol list.
std::string joinProtocols(const std::vector<std::string>& protocols) {
  std::string out;
  for (const std::string& p : protocols) {
    out += p;
    out += ',';
  }
  return out;
}

std::vector<std::string> splitProtocols(const std::string& joined) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < joined.size()) {
    std::size_t comma = joined.find(',', pos);
    if (comma == std::string::npos) comma = joined.size();
    if (comma > pos) out.push_back(joined.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

/// Splits `text` into lines (no trailing newline handling needed — the
/// encoder never emits one).
std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    out.push_back(text.substr(pos, nl - pos));
    if (nl == text.size()) break;
    pos = nl + 1;
  }
  return out;
}

}  // namespace

std::string makeFuzzBodySpec(const FuzzOptions& o) {
  return strf("fuzz-v1 seed=", o.seed,
              " protocols=", joinProtocols(o.protocols),
              " mutation=", toString(o.mutation),
              " horizon-cap=", o.horizon_cap,
              " differential-horizon=", o.differential_horizon,
              " faults=", o.faults ? 1 : 0, " fault-count=", o.fault_count,
              " fault-grace=", exec::fabric::formatSpecDouble(o.fault_grace),
              " fault-watchdog=", o.fault_watchdog);
}

std::string encodeFuzzRunOutcome(const FuzzRunOutcome& outcome) {
  if (outcome.failures.empty()) return "clean";
  std::string out = strf("hit ", outcome.failures.size());
  for (const OracleFailure& f : outcome.failures) {
    out += "\n" + f.protocol;
    out += "\n" + f.oracle;
    out += "\n" + exec::escapeLine(f.details);
  }
  out += "\n" + exec::escapeLine(outcome.fault_plan_text);
  out += "\n" + exec::escapeLine(outcome.system_text);
  return out;
}

bool decodeFuzzRunOutcome(const std::string& payload, FuzzRunOutcome& out) {
  out = FuzzRunOutcome{};
  if (payload == "clean") return true;
  const std::vector<std::string> lines = splitLines(payload);
  if (lines.empty() || lines[0].rfind("hit ", 0) != 0) return false;
  const std::string count_text = lines[0].substr(4);
  std::size_t count = 0;
  const auto [ptr, ec] = std::from_chars(
      count_text.data(), count_text.data() + count_text.size(), count);
  if (ec != std::errc() || ptr != count_text.data() + count_text.size() ||
      count == 0 || count > 1024) {
    return false;
  }
  if (lines.size() != 1 + 3 * count + 2) return false;
  for (std::size_t i = 0; i < count; ++i) {
    OracleFailure f;
    f.protocol = lines[1 + 3 * i];
    f.oracle = lines[2 + 3 * i];
    f.details = exec::unescapeLine(lines[3 + 3 * i]);
    out.failures.push_back(std::move(f));
  }
  out.fault_plan_text = exec::unescapeLine(lines[1 + 3 * count]);
  out.system_text = exec::unescapeLine(lines[2 + 3 * count]);
  return true;
}

void registerFuzzFleetBody() {
  exec::fabric::registerFleetBodyKind(
      "fuzz-v1",
      [](const std::string& spec) -> exec::fabric::FleetBodyFn {
        const auto seed = static_cast<std::uint64_t>(
            exec::fabric::specInt(spec, "seed"));
        const std::string mutation_name =
            exec::fabric::specValue(spec, "mutation");
        const std::optional<Mutation> mutation =
            mutationFromName(mutation_name);
        if (!mutation.has_value()) {
          throw ConfigError("body spec has unknown mutation '" +
                            mutation_name + "'");
        }
        OracleOptions oracle_options;
        oracle_options.protocols =
            splitProtocols(exec::fabric::specValue(spec, "protocols"));
        oracle_options.mutation = *mutation;
        oracle_options.horizon_cap =
            exec::fabric::specInt(spec, "horizon-cap");
        oracle_options.differential_horizon =
            exec::fabric::specInt(spec, "differential-horizon");

        const bool faults = exec::fabric::specInt(spec, "faults") != 0;
        const int fault_count =
            static_cast<int>(exec::fabric::specInt(spec, "fault-count"));
        FaultOracleOptions fault_options;
        fault_options.horizon_cap = oracle_options.horizon_cap;
        fault_options.differential_horizon =
            oracle_options.differential_horizon;
        fault_options.grace = exec::fabric::specDouble(spec, "fault-grace");
        fault_options.watchdog_timeout =
            exec::fabric::specInt(spec, "fault-watchdog");

        return [=](const std::string& key) {
          exec::fabric::FleetResult out;
          out.key = key;
          int index = 0;
          bool key_ok = key.size() > 1 && key[0] == 'r';
          if (key_ok) {
            const char* begin = key.data() + 1;
            const char* end = key.data() + key.size();
            const auto [ptr, ec] = std::from_chars(begin, end, index);
            key_ok = ec == std::errc() && ptr == end && index >= 0;
          }
          if (!key_ok) {
            out.payload = "malformed fuzz key '" + key + "'";
            return out;
          }
          // Rng(seed + i): the SweepRunner convention the serial fuzz
          // loop uses, so a fleet run of index i draws the identical
          // system and the identical oracle verdicts.
          Rng rng(seed + static_cast<std::uint64_t>(index));
          const WorkloadParams params = drawWorkloadParams(rng);
          const TaskSystem sys = generateWorkload(params, rng);
          FuzzRunOutcome outcome;
          if (faults) {
            const fault::FaultPlan plan =
                fault::FaultPlan::random(rng, sys, fault_count);
            outcome.failures = checkSystemFaults(sys, plan, fault_options);
            if (!outcome.failures.empty()) {
              outcome.system_text = serializeTaskSystemToString(sys);
              outcome.fault_plan_text = fault::formatPlan(plan, sys);
            }
          } else {
            outcome.failures = checkSystem(sys, oracle_options);
            if (!outcome.failures.empty()) {
              outcome.system_text = serializeTaskSystemToString(sys);
            }
          }
          out.ok = true;
          out.payload = encodeFuzzRunOutcome(outcome);
          return out;
        };
      });
}

}  // namespace mpcp::fuzz
