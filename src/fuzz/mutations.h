// Seeded protocol mutations — known-bad variants the fuzzer must catch.
//
// Differential fuzzing is only trustworthy if it demonstrably detects the
// bug classes it claims to cover (Brandenburg, arXiv:1909.09600: locking
// protocols are routinely mis-implemented in priority-queue/ceiling corner
// cases). Each Mutation is a deliberately wrong protocol variant; CI runs
// the fuzz loop against every mutation and fails if the oracles stay
// silent within the smoke budget. A repro produced against a mutation and
// later shrunk makes a good corpus entry: it must *fail* when replayed
// with the mutation and stay *clean* on the real protocol.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/ceilings.h"
#include "model/task_system.h"
#include "sim/protocol.h"

namespace mpcp::fuzz {

enum class Mutation {
  kNone,
  /// MPCP rule 3 implemented without the P_G base: gcs's execute at the
  /// highest *remote-user task* priority instead of being raised into the
  /// global band above P_H (the classic "forgot the ceiling offset" bug —
  /// Table 4-2's priorities collapse into the normal band, so Theorem 2
  /// no longer holds).
  kGcsCeilingBase,
  /// spin-fifo granting LIFO: the *newest* spinner wins the handoff. The
  /// MSRP per-request bound (one earlier request per remote processor)
  /// collapses — a spinner can be overtaken arbitrarily often — so the
  /// reference differential and the blocking-bound oracle must notice.
  kSpinFifoLifo,
  /// spin-prio granting in plain arrival order, ignoring priority — the
  /// priority-ordered handoff audit and the reference differential must
  /// notice.
  kSpinPrioFifo,
};

[[nodiscard]] const char* toString(Mutation m);
/// Parses a mutation name ("gcs-ceiling-base"); nullopt if unknown.
[[nodiscard]] std::optional<Mutation> mutationFromName(const std::string& s);
/// Every real mutation (kNone excluded), for --list-mutations and tests.
[[nodiscard]] const std::vector<Mutation>& allMutations();

/// Registry name of the protocol mutation `m` replaces ("mpcp",
/// "spin-fifo", ...); "" for kNone. Other protocols run unmodified when
/// fuzzing under `m`.
[[nodiscard]] const char* mutationTarget(Mutation m);

/// Builds the mutated variant of mutationTarget(m) (kNone = the real
/// MpcpProtocol). `system` and `tables` must outlive the result.
[[nodiscard]] std::unique_ptr<SyncProtocol> makeMutatedProtocol(
    Mutation m, const TaskSystem& system, const PriorityTables& tables);

}  // namespace mpcp::fuzz
