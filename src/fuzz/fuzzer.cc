#include "fuzz/fuzzer.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <system_error>

#include "common/strf.h"
#include "exp/sweep_runner.h"
#include "fuzz/repro.h"
#include "fuzz/shrink.h"
#include "model/serialize.h"

namespace mpcp::fuzz {

namespace {

/// One fuzz run: generate, oracle-check, return the failures (usually
/// none). Runs on a SweepRunner worker; must stay self-contained.
struct RunRow {
  bool generated = false;
  std::vector<OracleFailure> failures;
  std::string system_text;      ///< serialized system when failures exist
  std::string fault_plan_text;  ///< formatPlan() in fault mode, same gate
};

std::string sanitizeForFilename(std::string s) {
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') c = '_';
  }
  return s;
}

}  // namespace

WorkloadParams drawWorkloadParams(Rng& rng) {
  WorkloadParams p;
  p.processors = 2 + static_cast<int>(rng.uniformInt(0, 2));
  p.tasks_per_processor = 2 + static_cast<int>(rng.uniformInt(0, 2));
  p.utilization_per_processor = rng.uniformReal(0.25, 0.7);
  p.global_resources = 1 + static_cast<int>(rng.uniformInt(0, 2));
  p.max_gcs_per_task = 1 + static_cast<int>(rng.uniformInt(0, 2));
  p.global_sharing_prob = rng.uniformReal(0.4, 0.95);
  p.local_resources_per_processor = static_cast<int>(rng.uniformInt(0, 2));
  p.max_lcs_per_task = 1;
  p.local_sharing_prob = rng.uniformReal(0.0, 0.8);
  p.cs_min = 1;
  p.cs_max = 2 + rng.uniformInt(0, 28);
  p.suspension_prob = rng.chance(0.4) ? rng.uniformReal(0.1, 0.5) : 0.0;
  if (rng.chance(0.35)) {
    // "Differential profile": short periods so the tick-stepped reference
    // oracle's horizon covers several hyperperiods of real contention.
    p.period_min = 20;
    p.period_max = 200;
    p.period_granularity = 5;
  } else {
    p.period_min = 1'000;
    p.period_max = 20'000;
    p.period_granularity = 1'000;  // keeps auto horizons simulable
  }
  return p;
}

FuzzReport runFuzz(const FuzzOptions& options, std::ostream& log) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  OracleOptions oracle_options;
  oracle_options.protocols = options.protocols;
  oracle_options.mutation = options.mutation;
  oracle_options.horizon_cap = options.horizon_cap;
  oracle_options.differential_horizon = options.differential_horizon;

  FaultOracleOptions fault_options;
  fault_options.horizon_cap = options.horizon_cap;
  fault_options.differential_horizon = options.differential_horizon;
  fault_options.grace = options.fault_grace;
  fault_options.watchdog_timeout = options.fault_watchdog;

  exp::SweepRunner& runner = exp::SweepRunner::global();
  FuzzReport report;

  const int batch = std::max(runner.threadCount() * 4, 16);
  for (int base = 0; base < options.runs; base += batch) {
    if (options.time_budget_s > 0 && elapsed() >= options.time_budget_s) {
      report.budget_exhausted = true;
      break;
    }
    const int count = std::min(batch, options.runs - base);
    const std::vector<RunRow> rows = runner.map(
        count, options.seed + static_cast<std::uint64_t>(base),
        [&](int /*s*/, Rng& rng) {
          RunRow row;
          const WorkloadParams params = drawWorkloadParams(rng);
          const TaskSystem sys = generateWorkload(params, rng);
          row.generated = true;
          if (options.faults) {
            const fault::FaultPlan plan =
                fault::FaultPlan::random(rng, sys, options.fault_count);
            row.failures = checkSystemFaults(sys, plan, fault_options);
            if (!row.failures.empty()) {
              row.system_text = serializeTaskSystemToString(sys);
              row.fault_plan_text = fault::formatPlan(plan, sys);
            }
          } else {
            row.failures = checkSystem(sys, oracle_options);
            if (!row.failures.empty()) {
              row.system_text = serializeTaskSystemToString(sys);
            }
          }
          return row;
        });

    // Fold in run order: reported findings are deterministic for a given
    // (--runs, --seed) at any MPCP_THREADS.
    for (int s = 0; s < count; ++s) {
      const RunRow& row = rows[static_cast<std::size_t>(s)];
      ++report.runs_executed;
      if (row.failures.empty()) continue;
      ++report.systems_with_findings;
      if (static_cast<int>(report.findings.size()) >= options.max_findings) {
        continue;  // keep counting, stop shrinking/writing
      }

      FuzzFinding finding;
      finding.run_index = base + s;
      finding.derived_seed =
          options.seed + static_cast<std::uint64_t>(base + s);
      finding.failure = row.failures.front();
      log << "FINDING run=" << finding.run_index
          << " seed=" << finding.derived_seed << " ["
          << finding.failure.protocol << "] " << finding.failure.oracle
          << ": " << finding.failure.details << "\n";

      TaskSystem sys = parseTaskSystemFromString(row.system_text);
      finding.tasks_before = static_cast<int>(sys.tasks().size());

      if (options.shrink && row.fault_plan_text.empty()) {
        OracleOptions shrink_options = oracle_options;
        shrink_options.protocols = {finding.failure.protocol};
        const std::string target_oracle = finding.failure.oracle;
        const auto still_violates = [&](const TaskSystem& candidate) {
          for (const OracleFailure& f :
               checkSystem(candidate, shrink_options)) {
            if (f.oracle == target_oracle) return true;
          }
          return false;
        };
        // The recorded failure came from the full-oracle pass; re-check
        // under the narrowed protocol set before shrinking against it.
        if (still_violates(sys)) {
          const ShrinkResult shrunk = shrinkSystem(
              sys, still_violates, options.max_shrink_evaluations);
          finding.shrink_evaluations = shrunk.evaluations;
          sys = shrunk.system;
          log << "  shrunk " << finding.tasks_before << " -> "
              << sys.tasks().size() << " tasks in " << shrunk.evaluations
              << " evaluations" << (shrunk.hit_budget ? " (budget hit)" : "")
              << "\n";
        }
      }
      finding.tasks_after = static_cast<int>(sys.tasks().size());

      ReproCase repro;
      repro.protocol = finding.failure.protocol;
      repro.oracle = finding.failure.oracle;
      repro.mutation = options.mutation;
      repro.seed = finding.derived_seed;
      repro.horizon_cap = options.horizon_cap;
      repro.differential_horizon = options.differential_horizon;
      repro.fault_plan = row.fault_plan_text;
      repro.fault_grace = options.fault_grace;
      repro.fault_watchdog = options.fault_watchdog;
      repro.system = sys;
      finding.repro_text = writeRepro(repro);

      const std::string dir =
          options.corpus_dir.empty() ? "." : options.corpus_dir;
      std::error_code ec;  // best-effort; the open below reports failure
      std::filesystem::create_directories(dir, ec);
      const std::string path =
          strf(dir, "/repro-seed", finding.derived_seed, "-",
               sanitizeForFilename(finding.failure.protocol), "-",
               sanitizeForFilename(finding.failure.oracle), ".repro");
      std::ofstream out(path);
      out << finding.repro_text;
      out.flush();
      if (out) {
        finding.repro_path = path;
        log << "  wrote " << path << "\n";
      } else {
        log << "  warning: could not write " << path << "\n";
      }
      report.findings.push_back(std::move(finding));
    }
  }

  report.elapsed_s = elapsed();
  return report;
}

}  // namespace mpcp::fuzz
