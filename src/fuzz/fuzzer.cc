#include "fuzz/fuzzer.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <ostream>
#include <set>
#include <system_error>

#include <charconv>

#include "common/check.h"
#include "common/strf.h"
#include "exec/fabric/coordinator.h"
#include "exec/interrupt.h"
#include "exec/journal.h"
#include "exp/sweep_runner.h"
#include "fuzz/fleet.h"
#include "fuzz/repro.h"
#include "fuzz/shrink.h"
#include "model/serialize.h"

namespace mpcp::fuzz {

namespace {

/// One fuzz run: generate, oracle-check, return the failures (usually
/// none). Runs on a SweepRunner worker; must stay self-contained.
struct RunRow {
  bool generated = false;
  bool skipped = false;  ///< campaign resume: journal already has this key
  bool not_run = false;  ///< interrupt raised before this run started
  std::vector<OracleFailure> failures;
  std::string system_text;      ///< serialized system when failures exist
  std::string fault_plan_text;  ///< formatPlan() in fault mode, same gate
};

std::string sanitizeForFilename(std::string s) {
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') c = '_';
  }
  return s;
}

/// Canonical campaign journal key for run index i.
std::string fuzzRunKey(int index) { return strf("r", index); }

/// Everything that shapes what a run index produces goes into the
/// fingerprint; --runs, the time budget, and output paths deliberately
/// not (extending a campaign with more runs is the point of resuming).
std::string campaignFingerprint(const FuzzOptions& o) {
  std::string protocols;
  for (const std::string& p : o.protocols) {
    protocols += p;
    protocols += ',';
  }
  return strf("fuzz-v1 seed=", o.seed, " protocols=", protocols,
              " mutation=", toString(o.mutation),
              " horizon-cap=", o.horizon_cap,
              " differential-horizon=", o.differential_horizon,
              " shrink=", o.shrink ? 1 : 0,
              " max-shrink=", o.max_shrink_evaluations,
              " faults=", o.faults ? 1 : 0, " fault-count=", o.fault_count,
              " fault-grace=", o.fault_grace,
              " fault-watchdog=", o.fault_watchdog);
}

}  // namespace

std::string findingSignature(const std::string& protocol,
                             const std::string& oracle,
                             const std::string& system_text) {
  // FNV-1a 64-bit over the (shrunk) system text.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : system_text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(h));
  return strf(protocol, ':', oracle, '@', hex);
}

WorkloadParams drawWorkloadParams(Rng& rng) {
  WorkloadParams p;
  p.processors = 2 + static_cast<int>(rng.uniformInt(0, 2));
  p.tasks_per_processor = 2 + static_cast<int>(rng.uniformInt(0, 2));
  p.utilization_per_processor = rng.uniformReal(0.25, 0.7);
  p.global_resources = 1 + static_cast<int>(rng.uniformInt(0, 2));
  p.max_gcs_per_task = 1 + static_cast<int>(rng.uniformInt(0, 2));
  p.global_sharing_prob = rng.uniformReal(0.4, 0.95);
  p.local_resources_per_processor = static_cast<int>(rng.uniformInt(0, 2));
  p.max_lcs_per_task = 1;
  p.local_sharing_prob = rng.uniformReal(0.0, 0.8);
  p.cs_min = 1;
  p.cs_max = 2 + rng.uniformInt(0, 28);
  p.suspension_prob = rng.chance(0.4) ? rng.uniformReal(0.1, 0.5) : 0.0;
  if (rng.chance(0.35)) {
    // "Differential profile": short periods so the tick-stepped reference
    // oracle's horizon covers several hyperperiods of real contention.
    p.period_min = 20;
    p.period_max = 200;
    p.period_granularity = 5;
  } else {
    p.period_min = 1'000;
    p.period_max = 20'000;
    p.period_granularity = 1'000;  // keeps auto horizons simulable
  }
  return p;
}

FuzzReport runFuzz(const FuzzOptions& options, std::ostream& log) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  OracleOptions oracle_options;
  oracle_options.protocols = options.protocols;
  oracle_options.mutation = options.mutation;
  oracle_options.horizon_cap = options.horizon_cap;
  oracle_options.differential_horizon = options.differential_horizon;

  FaultOracleOptions fault_options;
  fault_options.horizon_cap = options.horizon_cap;
  fault_options.differential_horizon = options.differential_horizon;
  fault_options.grace = options.fault_grace;
  fault_options.watchdog_timeout = options.fault_watchdog;

  exp::SweepRunner& runner = exp::SweepRunner::global();
  FuzzReport report;

  // Campaign mode: load the journal, refuse config mismatches, and seed
  // the crash-signature set from findings recorded by previous runs.
  const bool campaign = !options.campaign_path.empty();
  std::unique_ptr<exec::CampaignJournal> journal;
  std::set<std::string> done_keys;
  std::set<std::string> seen_signatures;
  if (campaign) {
    const exec::JournalLoad loaded =
        exec::loadJournalFile(options.campaign_path);
    report.journal_corrupt_lines = loaded.corrupt_lines;
    const std::string fingerprint = campaignFingerprint(options);
    if (!loaded.empty()) {
      if (!options.resume) {
        throw ConfigError("campaign journal '" + options.campaign_path +
                          "' already has records; pass --resume to continue "
                          "it or remove the file to start over");
      }
      if (loaded.meta != fingerprint) {
        throw ConfigError("campaign journal '" + options.campaign_path +
                          "' was recorded under a different configuration");
      }
    }
    for (const auto& [key, payload] : loaded.completed()) {
      done_keys.insert(key);
      // Payloads: "clean", "overflow", "finding <sig>[ dup]".
      if (payload.rfind("finding ", 0) == 0) {
        std::string sig = payload.substr(8);
        const bool dup = sig.size() > 4 && sig.ends_with(" dup");
        if (dup) sig.resize(sig.size() - 4);
        seen_signatures.insert(sig);
        if (!dup) ++report.previous_findings;
      }
    }
    journal = std::make_unique<exec::CampaignJournal>(options.campaign_path);
    if (loaded.empty()) {
      journal->append(exec::RecordKind::kMeta, "config", fingerprint);
    }
  }

  // Folds one executed run into the report: journal it, shrink, dedupe
  // by signature, write the repro. Shared between the serial batch loop
  // (run order) and the fleet path (arrival order).
  const auto foldRow = [&](int run_index, const RunRow& row) {
    const std::string key = fuzzRunKey(run_index);
    ++report.runs_executed;
    if (row.failures.empty()) {
      if (journal) journal->append(exec::RecordKind::kDone, key, "clean");
      return;
    }
    ++report.systems_with_findings;
    if (static_cast<int>(report.findings.size()) >= options.max_findings) {
      // Keep counting, stop shrinking/writing. "overflow" (not "clean")
      // so the journal never claims a finding-bearing run was clean.
      if (journal) journal->append(exec::RecordKind::kDone, key, "overflow");
      return;
    }

    FuzzFinding finding;
    finding.run_index = run_index;
    finding.derived_seed =
        options.seed + static_cast<std::uint64_t>(run_index);
    finding.failure = row.failures.front();
    log << "FINDING run=" << finding.run_index
        << " seed=" << finding.derived_seed << " ["
        << finding.failure.protocol << "] " << finding.failure.oracle
        << ": " << finding.failure.details << "\n";

    TaskSystem sys = parseTaskSystemFromString(row.system_text);
    finding.tasks_before = static_cast<int>(sys.tasks().size());

    if (options.shrink && row.fault_plan_text.empty()) {
      OracleOptions shrink_options = oracle_options;
      shrink_options.protocols = {finding.failure.protocol};
      const std::string target_oracle = finding.failure.oracle;
      const auto still_violates = [&](const TaskSystem& candidate) {
        for (const OracleFailure& f :
             checkSystem(candidate, shrink_options)) {
          if (f.oracle == target_oracle) return true;
        }
        return false;
      };
      // The recorded failure came from the full-oracle pass; re-check
      // under the narrowed protocol set before shrinking against it.
      if (still_violates(sys)) {
        const ShrinkResult shrunk = shrinkSystem(
            sys, still_violates, options.max_shrink_evaluations);
        finding.shrink_evaluations = shrunk.evaluations;
        sys = shrunk.system;
        log << "  shrunk " << finding.tasks_before << " -> "
            << sys.tasks().size() << " tasks in " << shrunk.evaluations
            << " evaluations" << (shrunk.hit_budget ? " (budget hit)" : "")
            << "\n";
      }
    }
    finding.tasks_after = static_cast<int>(sys.tasks().size());

    // Campaign dedupe: a signature seen earlier in this campaign (or in
    // a previous run of it) is the same bug rediscovered — count it,
    // journal it, but don't write another repro file.
    std::string signature;
    if (campaign) {
      signature =
          findingSignature(finding.failure.protocol, finding.failure.oracle,
                           serializeTaskSystemToString(sys));
      if (!seen_signatures.insert(signature).second) {
        ++report.duplicate_findings;
        log << "  duplicate of known finding " << signature
            << " (repro not re-written)\n";
        journal->append(exec::RecordKind::kDone, key,
                        "finding " + signature + " dup");
        return;
      }
    }

    ReproCase repro;
    repro.protocol = finding.failure.protocol;
    repro.oracle = finding.failure.oracle;
    repro.mutation = options.mutation;
    repro.seed = finding.derived_seed;
    repro.horizon_cap = options.horizon_cap;
    repro.differential_horizon = options.differential_horizon;
    repro.fault_plan = row.fault_plan_text;
    repro.fault_grace = options.fault_grace;
    repro.fault_watchdog = options.fault_watchdog;
    repro.system = sys;
    finding.repro_text = writeRepro(repro);

    const std::string dir =
        options.corpus_dir.empty() ? "." : options.corpus_dir;
    std::error_code ec;  // best-effort; the open below reports failure
    std::filesystem::create_directories(dir, ec);
    const std::string path =
        strf(dir, "/repro-seed", finding.derived_seed, "-",
             sanitizeForFilename(finding.failure.protocol), "-",
             sanitizeForFilename(finding.failure.oracle), ".repro");
    std::ofstream out(path);
    out << finding.repro_text;
    out.flush();
    if (out) {
      finding.repro_path = path;
      log << "  wrote " << path << "\n";
    } else {
      log << "  warning: could not write " << path << "\n";
    }
    if (journal) {
      journal->append(exec::RecordKind::kDone, key, "finding " + signature);
    }
    report.findings.push_back(std::move(finding));
  };

  // Fleet mode: hand the pending run indices to the campaign fabric.
  // Workers execute generate+oracles; every result folds here, so the
  // journal/dedupe/repro behavior matches the serial path.
  if (options.fleet_workers > 0 || !options.fleet_listen.empty()) {
    registerFuzzFleetBody();
    std::vector<std::string> keys;
    for (int i = 0; i < options.runs; ++i) {
      const std::string key = fuzzRunKey(i);
      if (done_keys.count(key) != 0) {
        ++report.resumed_skips;
        continue;
      }
      keys.push_back(key);
    }

    exec::fabric::FleetConfig fc;
    fc.listen = options.fleet_listen;
    fc.spawn_workers = options.fleet_workers;
    fc.worker_bin = options.fleet_worker_bin;
    fc.shard_dir = options.fleet_shard_dir;
    fc.body_spec = makeFuzzBodySpec(options);
    fc.fingerprint = campaignFingerprint(options);
    fc.timing.heartbeat_ms = options.fleet_heartbeat_ms;
    fc.timing.lease_deadline_ms = options.fleet_lease_deadline_ms;
    fc.timing.degrade_after_ms = options.fleet_grace_ms;
    if (!options.fleet_chaos.empty()) {
      fc.chaos = exec::fabric::parseChaosSchedule(options.fleet_chaos);
    }
    fc.log = &log;
    fc.local_fn =
        (*exec::fabric::findFleetBodyKind("fuzz-v1"))(fc.body_spec);
    fc.on_result = [&](const exec::fabric::FleetResult& r) {
      int index = 0;
      const char* begin = r.key.data() + 1;
      const char* end = r.key.data() + r.key.size();
      const auto [ptr, ec] = std::from_chars(begin, end, index);
      FuzzRunOutcome outcome;
      if (r.key.empty() || r.key[0] != 'r' || ec != std::errc() ||
          ptr != end || !decodeFuzzRunOutcome(r.payload, outcome)) {
        // Undecodable result: leave the key un-journaled so a resume
        // simply re-runs it.
        log << "fleet: discarding undecodable result for key '" << r.key
            << "'\n";
        return;
      }
      RunRow row;
      row.generated = true;
      row.failures = std::move(outcome.failures);
      row.system_text = std::move(outcome.system_text);
      row.fault_plan_text = std::move(outcome.fault_plan_text);
      foldRow(index, row);
    };
    fc.on_fail = [&](const std::string& key, const std::string& error) {
      if (journal) journal->append(exec::RecordKind::kFail, key, error);
      log << "fleet: run " << key << " failed permanently: " << error
          << "\n";
    };

    const exec::fabric::FleetOutcome fo = exec::fabric::runFleet(keys, fc);
    report.fleet = fo.counters;
    report.interrupted = fo.interrupted || exec::interrupted();
    report.elapsed_s = elapsed();
    return report;
  }

  const int batch = std::max(runner.threadCount() * 4, 16);
  for (int base = 0; base < options.runs; base += batch) {
    if (options.time_budget_s > 0 && elapsed() >= options.time_budget_s) {
      report.budget_exhausted = true;
      break;
    }
    if (exec::interrupted()) {
      report.interrupted = true;
      break;
    }
    const int count = std::min(batch, options.runs - base);
    const std::vector<RunRow> rows = runner.map(
        count, options.seed + static_cast<std::uint64_t>(base),
        [&](int s, Rng& rng) {
          RunRow row;
          if (campaign && done_keys.count(fuzzRunKey(base + s)) != 0) {
            row.skipped = true;
            return row;
          }
          if (exec::interrupted()) {
            row.not_run = true;
            return row;
          }
          const WorkloadParams params = drawWorkloadParams(rng);
          const TaskSystem sys = generateWorkload(params, rng);
          row.generated = true;
          if (options.faults) {
            const fault::FaultPlan plan =
                fault::FaultPlan::random(rng, sys, options.fault_count);
            row.failures = checkSystemFaults(sys, plan, fault_options);
            if (!row.failures.empty()) {
              row.system_text = serializeTaskSystemToString(sys);
              row.fault_plan_text = fault::formatPlan(plan, sys);
            }
          } else {
            row.failures = checkSystem(sys, oracle_options);
            if (!row.failures.empty()) {
              row.system_text = serializeTaskSystemToString(sys);
            }
          }
          return row;
        });

    // Fold in run order: reported findings are deterministic for a given
    // (--runs, --seed) at any MPCP_THREADS.
    for (int s = 0; s < count; ++s) {
      const RunRow& row = rows[static_cast<std::size_t>(s)];
      if (row.skipped) {
        ++report.resumed_skips;
        continue;
      }
      if (row.not_run || exec::interrupted()) {
        report.interrupted = true;
        break;  // un-journaled rows in this batch simply re-run on resume
      }
      foldRow(base + s, row);
    }
    if (report.interrupted) break;
  }

  report.elapsed_s = elapsed();
  return report;
}

}  // namespace mpcp::fuzz
