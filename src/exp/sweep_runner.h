// SweepRunner — deterministic fan-out of independent experiment seeds.
//
// Every bench in this repo runs the same loop: for each seed s, derive
// Rng(seed_base + s), generate a workload, analyze/simulate it, and fold
// the per-seed row into an aggregate. The rows are independent, so the
// runner fans them across a ThreadPool; determinism is preserved because
//   * each seed's RNG is derived from (seed_base, s) alone — identical to
//     the serial convention the benches always used, and
//   * rows land in a results vector indexed by s, so any reduction that
//     walks the vector front-to-back sees exactly the serial order.
// Hence results are bit-identical at any thread count (the property
// tests/parallel_sweep_test.cc asserts).
//
// Thread count: explicit constructor argument, or the MPCP_THREADS
// environment variable, defaulting to hardware_concurrency().
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "exp/thread_pool.h"

namespace mpcp::exp {

class SweepRunner {
 public:
  explicit SweepRunner(int threads = ThreadPool::defaultThreadCount())
      : pool_(threads) {}

  [[nodiscard]] int threadCount() const { return pool_.threadCount(); }

  /// The per-seed RNG stream: the serial benches' `Rng(seed_base + s)`.
  [[nodiscard]] static Rng rngFor(std::uint64_t seed_base, int s) {
    return Rng(seed_base + static_cast<std::uint64_t>(s));
  }

  /// Runs fn(s, rng) for every seed s in [0, seeds) and returns the rows
  /// in seed order. R must be default-constructible and movable.
  template <typename Fn>
  auto map(int seeds, std::uint64_t seed_base, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, int, Rng&>> {
    using R = std::invoke_result_t<Fn&, int, Rng&>;
    static_assert(std::is_default_constructible_v<R>,
                  "SweepRunner::map rows must be default-constructible");
    std::vector<R> rows(static_cast<std::size_t>(std::max(0, seeds)));
    pool_.parallelFor(seeds, [&](std::int64_t s) {
      Rng rng = rngFor(seed_base, static_cast<int>(s));
      rows[static_cast<std::size_t>(s)] = fn(static_cast<int>(s), rng);
    });
    return rows;
  }

  /// Bare index fan-out for callers that derive everything themselves.
  template <typename Fn>
  void forEach(std::int64_t n, Fn&& fn) {
    pool_.parallelFor(n, [&](std::int64_t i) { fn(i); });
  }

  /// Process-wide runner for the benches: sized by MPCP_THREADS /
  /// hardware_concurrency at first use.
  static SweepRunner& global();

 private:
  ThreadPool pool_;
};

}  // namespace mpcp::exp
