// SweepRunner — deterministic fan-out of independent experiment seeds.
//
// Every bench in this repo runs the same loop: for each seed s, derive
// Rng(seed_base + s), generate a workload, analyze/simulate it, and fold
// the per-seed row into an aggregate. The rows are independent, so the
// runner fans them across a ThreadPool; determinism is preserved because
//   * each seed's RNG is derived from (seed_base, s) alone — identical to
//     the serial convention the benches always used, and
//   * rows land in a results vector indexed by s, so any reduction that
//     walks the vector front-to-back sees exactly the serial order.
// Hence results are bit-identical at any thread count (the property
// tests/parallel_sweep_test.cc asserts).
//
// Thread count: explicit constructor argument, or the MPCP_THREADS
// environment variable, defaulting to hardware_concurrency().
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "exp/thread_pool.h"

namespace mpcp::exp {

/// One run that did not produce a row (threw, was cancelled by the
/// wall-clock watchdog, or — under a subprocess executor — crashed or
/// was killed). Sweeps carry these alongside the surviving rows instead
/// of aborting the whole batch.
struct RunFailure {
  int seed = -1;
  std::string error;
  bool timed_out = false;  ///< cancelled/killed by a wall-clock limit
  // Filled by the crash-isolated executor path (src/exec): how the
  // worker process died and what it last wrote to stderr. All zero/empty
  // for in-thread failures.
  int signal = 0;            ///< terminating signal (SIGSEGV, SIGKILL, …)
  int exit_code = 0;         ///< worker exit status when it exited
  std::string stderr_tail;   ///< last bytes of worker stderr
  int attempts = 1;          ///< attempts spent before giving up
};

/// Per-run ceilings for mapGuarded.
struct GuardOptions {
  /// Wall-clock ceiling per run in seconds; 0 disables the watchdog.
  double wall_limit_s = 0;
  /// Simulated-time ceiling the run body should apply (e.g. as
  /// SimConfig::horizon_cap); 0 = caller's default. Forwarded verbatim in
  /// RunGuard — the runner cannot clamp a simulation it does not build.
  Time horizon_cap = 0;
};

/// Handed to every mapGuarded run body.
struct RunGuard {
  /// Raised by the watchdog once the run exceeds its wall-clock budget.
  /// Wire into SimConfig::cancel so Engine::run() throws SimCancelled.
  const std::atomic<bool>* cancel = nullptr;
  Time horizon_cap = 0;  ///< GuardOptions::horizon_cap, forwarded
};

/// Result of a guarded sweep: rows[s] is empty exactly when seed s appears
/// in `failures` (which is sorted by seed).
template <typename R>
struct GuardedRows {
  std::vector<std::optional<R>> rows;
  std::vector<RunFailure> failures;
};

class SweepRunner {
 public:
  explicit SweepRunner(int threads = ThreadPool::defaultThreadCount())
      : pool_(threads) {}

  [[nodiscard]] int threadCount() const { return pool_.threadCount(); }

  /// The per-seed RNG stream: the serial benches' `Rng(seed_base + s)`.
  [[nodiscard]] static Rng rngFor(std::uint64_t seed_base, int s) {
    return Rng(seed_base + static_cast<std::uint64_t>(s));
  }

  /// Runs fn(s, rng) for every seed s in [0, seeds) and returns the rows
  /// in seed order. R must be default-constructible and movable.
  template <typename Fn>
  auto map(int seeds, std::uint64_t seed_base, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, int, Rng&>> {
    using R = std::invoke_result_t<Fn&, int, Rng&>;
    static_assert(std::is_default_constructible_v<R>,
                  "SweepRunner::map rows must be default-constructible");
    std::vector<R> rows(static_cast<std::size_t>(std::max(0, seeds)));
    pool_.parallelFor(seeds, [&](std::int64_t s) {
      Rng rng = rngFor(seed_base, static_cast<int>(s));
      rows[static_cast<std::size_t>(s)] = fn(static_cast<int>(s), rng);
    });
    return rows;
  }

  /// Bare index fan-out for callers that derive everything themselves.
  template <typename Fn>
  void forEach(std::int64_t n, Fn&& fn) {
    pool_.parallelFor(n, [&](std::int64_t i) { fn(i); });
  }

  /// Hardened map: runs fn(s, rng, guard) for every seed, converting
  /// std::exception escapes (including SimCancelled raised through
  /// guard.cancel by the wall-clock watchdog) into RunFailure records
  /// instead of aborting the sweep — the remaining seeds always run.
  /// Determinism: surviving rows are bit-identical to map() at any thread
  /// count; only which seeds *fail* can differ when a wall-clock limit is
  /// set (wall time is inherently nondeterministic).
  template <typename Fn>
  auto mapGuarded(int seeds, std::uint64_t seed_base, const GuardOptions& opt,
                  Fn&& fn)
      -> GuardedRows<std::invoke_result_t<Fn&, int, Rng&, const RunGuard&>> {
    using R = std::invoke_result_t<Fn&, int, Rng&, const RunGuard&>;
    const auto n = static_cast<std::size_t>(std::max(0, seeds));
    GuardedRows<R> out;
    out.rows.resize(n);
    std::vector<std::optional<RunFailure>> fails(n);

    struct Slot {
      std::atomic<std::int64_t> start_ns{-1};
      std::atomic<bool> cancel{false};
      std::atomic<bool> done{false};
    };
    std::vector<Slot> slots(n);
    const auto now_ns = [] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };

    // The watchdog polls run start stamps and raises the cancel flag of
    // any run past its wall-clock budget; Engine::run() polls that flag
    // every iteration and bails with SimCancelled.
    std::atomic<bool> monitor_stop{false};
    std::thread monitor;
    if (opt.wall_limit_s > 0 && n > 0) {
      const auto limit_ns =
          static_cast<std::int64_t>(opt.wall_limit_s * 1e9);
      monitor = std::thread([&] {
        while (!monitor_stop.load(std::memory_order_acquire)) {
          const std::int64_t t = now_ns();
          for (Slot& slot : slots) {
            const std::int64_t began =
                slot.start_ns.load(std::memory_order_acquire);
            if (began >= 0 && !slot.done.load(std::memory_order_acquire) &&
                t - began >= limit_ns) {
              slot.cancel.store(true, std::memory_order_release);
            }
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
    }

    pool_.parallelFor(seeds, [&](std::int64_t s) {
      Slot& slot = slots[static_cast<std::size_t>(s)];
      slot.start_ns.store(now_ns(), std::memory_order_release);
      Rng rng = rngFor(seed_base, static_cast<int>(s));
      const RunGuard guard{&slot.cancel, opt.horizon_cap};
      try {
        out.rows[static_cast<std::size_t>(s)] =
            fn(static_cast<int>(s), rng, guard);
      } catch (const std::exception& e) {
        fails[static_cast<std::size_t>(s)] =
            RunFailure{static_cast<int>(s), e.what(),
                       slot.cancel.load(std::memory_order_acquire)};
      }
      slot.done.store(true, std::memory_order_release);
    });

    if (monitor.joinable()) {
      monitor_stop.store(true, std::memory_order_release);
      monitor.join();
    }
    for (std::optional<RunFailure>& f : fails) {
      if (f.has_value()) out.failures.push_back(std::move(*f));
    }
    return out;
  }

  /// Process-wide runner for the benches: sized by MPCP_THREADS /
  /// hardware_concurrency at first use.
  static SweepRunner& global();

 private:
  ThreadPool pool_;
};

}  // namespace mpcp::exp
