#include "exp/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

namespace mpcp::exp {

int ThreadPool::defaultThreadCount() {
  if (const char* env = std::getenv("MPCP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<int>(std::min(v, 1024L));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping, queue drained
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    // A throwing job must not escape the worker thread (std::terminate)
    // or skip the inflight_ decrement (parallelFor would wait forever):
    // capture it and hand it back to the next parallelFor drain.
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      if (err != nullptr && task_error_ == nullptr) task_error_ = err;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallelFor(std::int64_t n,
                             const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  if (threads_ == 1 || n == 1) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::int64_t> next{0};
    std::int64_t n = 0;
    std::int64_t chunk = 1;
    std::mutex err_mu;
    std::int64_t err_at = -1;       // chunk start of the stored exception
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  shared->n = n;
  // ~8 chunks per thread balances load without hammering the cursor.
  shared->chunk = std::max<std::int64_t>(1, n / (8 * threads_));

  auto drain = [shared, &fn] {
    for (;;) {
      const std::int64_t begin =
          shared->next.fetch_add(shared->chunk, std::memory_order_relaxed);
      if (begin >= shared->n) return;
      const std::int64_t end = std::min(begin + shared->chunk, shared->n);
      try {
        for (std::int64_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->err_mu);
        // Keep the exception from the earliest chunk so reruns at a
        // different thread count report the same failure.
        if (shared->error == nullptr || begin < shared->err_at) {
          shared->error = std::current_exception();
          shared->err_at = begin;
        }
      }
    }
  };

  // One drain closure per worker; the calling thread drains too, so all
  // `threads_` threads cooperate on the same cursor.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < threads_ - 1; ++i) {
      jobs_.emplace(drain);
      ++inflight_;
    }
  }
  work_cv_.notify_all();

  drain();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return inflight_ == 0; });
    // An exception that escaped a job closure itself (not fn — drain
    // catches those) surfaces here instead of killing the process.
    if (task_error_ != nullptr && shared->error == nullptr) {
      shared->error = task_error_;
    }
    task_error_ = nullptr;
  }
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace mpcp::exp
