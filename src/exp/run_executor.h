// Pluggable run-execution strategy for payload-producing sweeps.
//
// A sweep/campaign driver hands the executor a *body* — a closure that
// performs one run and returns its result serialized as a byte string
// (a CSV row, a repro, …). Strings are the contract because the
// subprocess executor (src/exec/subprocess.h) must move the result
// across a process boundary; the in-thread executor below simply calls
// the body. Either way the driver gets a structured ExecResult instead
// of an exception or a dead process:
//
//   * InThreadExecutor (here)          — body runs on the calling pool
//     thread; std::exception escapes become !ok results. Fast, but a
//     segfault or abort in the body takes the driver down with it.
//   * exec::SubprocessExecutor         — body runs in a forked child with
//     optional wall-clock and address-space ceilings; any death (signal,
//     nonzero exit, timeout) is decoded into ExecResult fields.
//   * exec::RetryingExecutor           — decorator adding capped
//     exponential backoff with deterministic, seed-derived jitter.
//
// Lives in exp/ (not exec/) so SweepRunner-level code can accept a
// RunExecutor& without exp depending on the process-management layer.
#pragma once

#include <functional>
#include <string>

namespace mpcp::exp {

/// Outcome of executing one run body, however it was executed.
struct ExecResult {
  bool ok = false;
  std::string payload;      ///< body() return value when ok
  std::string error;        ///< human-readable failure when !ok
  int exit_code = 0;        ///< worker exit status (0 for in-thread)
  int signal = 0;           ///< terminating signal, 0 = none
  bool timed_out = false;   ///< killed by the wall-clock limit
  std::string stderr_tail;  ///< last bytes of worker stderr (subprocess)
  int attempts = 1;         ///< total attempts taken (>1 after retries)
};

class RunExecutor {
 public:
  virtual ~RunExecutor() = default;
  [[nodiscard]] virtual ExecResult execute(
      const std::function<std::string()>& body) = 0;
};

/// Runs the body on the calling thread; exceptions become failures.
class InThreadExecutor final : public RunExecutor {
 public:
  [[nodiscard]] ExecResult execute(
      const std::function<std::string()>& body) override;
};

}  // namespace mpcp::exp
