#include "exp/counter_sweep.h"

#include "core/simulate.h"

namespace mpcp::exp {

obs::Counters counterSweep(const CounterSweepOptions& options,
                           SweepRunner* runner) {
  SweepRunner& r = runner != nullptr ? *runner : SweepRunner::global();
  auto rows = r.map(options.seeds, options.seed_base, [&](int, Rng& rng) {
    const TaskSystem sys = generateWorkload(options.params, rng);
    SimConfig config;
    config.horizon = options.horizon;
    config.record_trace = false;
    return simulate(options.protocol, sys, config).counters;
  });
  obs::Counters total;
  for (const obs::Counters& row : rows) total.merge(row);
  return total;
}

}  // namespace mpcp::exp
