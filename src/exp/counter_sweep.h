// Aggregated runtime counters over a sweep of generated workloads — the
// engine behind `mpcp_cli stats`.
//
// For each seed s in [0, seeds) the sweep derives Rng(seed_base + s),
// generates a workload, simulates it with tracing off (counters are
// always on), and folds the run's obs::Counters into one aggregate.
// Rows come back from SweepRunner::map in seed order and the fold walks
// them front-to-back, so the aggregate is byte-identical at any
// MPCP_THREADS setting (obs::Counters::merge is commutative and
// associative on top of that — sums, max for high-water marks).
#pragma once

#include <cstdint>

#include "core/protocol_factory.h"
#include "exp/sweep_runner.h"
#include "obs/counters.h"
#include "taskgen/generator.h"

namespace mpcp::exp {

struct CounterSweepOptions {
  ProtocolKind protocol = ProtocolKind::kMpcp;
  WorkloadParams params;
  int seeds = 16;
  std::uint64_t seed_base = 1;
  Time horizon = 20'000;
};

/// Runs the sweep on `runner` (SweepRunner::global() when null) and
/// returns the merged counters for all `seeds` runs.
[[nodiscard]] obs::Counters counterSweep(const CounterSweepOptions& options,
                                         SweepRunner* runner = nullptr);

}  // namespace mpcp::exp
