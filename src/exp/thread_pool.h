// Fixed-size worker pool with a chunked parallel-for, built for the
// experiment runner: thousands of independent, CPU-bound, deterministic
// simulations fanned across cores.
//
// Design constraints (see DESIGN.md / ISSUE 1):
//   * determinism is owned by the caller: parallelFor(n, fn) promises only
//     that fn(i) runs exactly once for every i in [0, n) — callers derive
//     all per-iteration state (RNG streams, output slots) from i alone, so
//     results are bit-identical at any thread count, including 1;
//   * the calling thread participates in the work, so a 1-thread pool
//     spawns no workers and degenerates to a plain serial loop;
//   * iterations are handed out in contiguous chunks via an atomic cursor
//     to amortize synchronization on short tasks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mpcp::exp {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining thread).
  /// `threads <= 0` is clamped to 1.
  explicit ThreadPool(int threads = defaultThreadCount());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threadCount() const { return threads_; }

  /// Runs fn(i) exactly once for each i in [0, n), fanned across the pool
  /// in contiguous chunks; the calling thread participates. Blocks until
  /// every iteration completed. Not reentrant from inside fn.
  ///
  /// Multi-exception contract (tested in thread_pool_test.cc): when two
  /// or more iterations throw concurrently, exactly ONE exception is
  /// rethrown here — the one from the chunk with the lowest starting
  /// index, so reruns at a different thread count report the same
  /// failure — and every other exception is swallowed. Exceptions never
  /// escape a worker thread (no std::terminate), every chunk that did
  /// not throw still runs to completion (only the throwing chunk's
  /// remaining iterations are skipped), and the pool stays usable for
  /// the next parallelFor.
  void parallelFor(std::int64_t n,
                   const std::function<void(std::int64_t)>& fn);

  /// Thread count requested by the environment: MPCP_THREADS if set to a
  /// positive integer, else std::thread::hardware_concurrency() (min 1).
  static int defaultThreadCount();

 private:
  void workerLoop();

  int threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for jobs
  std::condition_variable done_cv_;   // parallelFor waits here for drain
  std::queue<std::function<void()>> jobs_;
  std::int64_t inflight_ = 0;  // queued + running job closures
  bool stopping_ = false;
  /// First exception that escaped a job closure (guarded by mu_);
  /// rethrown by the next parallelFor instead of std::terminate.
  std::exception_ptr task_error_;
};

}  // namespace mpcp::exp
