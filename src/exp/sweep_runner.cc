#include "exp/sweep_runner.h"

namespace mpcp::exp {

SweepRunner& SweepRunner::global() {
  static SweepRunner runner;
  return runner;
}

}  // namespace mpcp::exp
