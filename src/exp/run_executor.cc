#include "exp/run_executor.h"

#include <exception>

namespace mpcp::exp {

ExecResult InThreadExecutor::execute(
    const std::function<std::string()>& body) {
  ExecResult r;
  try {
    r.payload = body();
    r.ok = true;
  } catch (const std::exception& e) {
    r.error = e.what();
  }
  return r;
}

}  // namespace mpcp::exp
