#include "protocols/spin.h"

#include <algorithm>

#include "common/check.h"
#include "common/strf.h"

namespace mpcp {

SpinProtocol::SpinProtocol(const TaskSystem& system,
                           const PriorityTables& tables, SpinOrder order)
    : order_(order), sems_(system.resources().size()) {
  // Spin sections are flat: busy-waiting inside a held section could
  // deadlock (two spinners holding what the other wants would burn their
  // processors forever), so reject nesting outright — the group-lock
  // collapse MSRP prescribes is the supported encoding.
  for (const Task& t : system.tasks()) {
    for (const CriticalSection& cs : t.sections) {
      if (cs.parent < 0) continue;
      const CriticalSection& outer =
          t.sections[static_cast<std::size_t>(cs.parent)];
      throw ConfigError(strf(
          "spin protocols forbid nested critical sections (", t.name, ": ",
          outer.resource, " encloses ", cs.resource,
          "); collapse them into a group lock"));
    }
  }
  // One band above everything: higher than every task urgency raised
  // into the global band, so no gcs priority can preempt a spin section.
  std::int32_t max_urgency = 0;
  for (const Task& t : system.tasks()) {
    max_urgency = std::max(max_urgency, t.priority.urgency());
  }
  np_priority_ = Priority(max_urgency + 1).inGlobalBand(tables.globalBase());
  reserveSemQueues(sems_, 2 * system.tasks().size());
}

LockOutcome SpinProtocol::onLock(Job& j, ResourceId r) {
  SemState& s = sems_[static_cast<std::size_t>(r.value())];
  if (s.holder == &j) return LockOutcome::kGranted;  // handed off mid-spin
  if (s.holder == nullptr) {
    s.holder = &j;
    engine_->noteGlobalHolder(r, &j);
    j.elevated = np_priority_;
    engine_->notePriorityChanged(j);
    engine_->emit({.kind = Ev::kGcsEnter, .job = j.id, .processor = j.current,
                   .resource = r, .priority = j.elevated});
    return LockOutcome::kGranted;
  }
  if (j.spinning) return LockOutcome::kSpinning;  // idempotent revisit
  // Contended: enter the spin queue and busy-wait non-preemptively. The
  // elevation happens at spin *start* — the processor is occupied from
  // here through the critical section's V().
  const Priority key =
      order_ == SpinOrder::kPriority ? j.base : Priority(0);  // FIFO: seq
  s.queue.push(&j, key);
  j.elevated = np_priority_;
  engine_->notePriorityChanged(j);
  engine_->emit({.kind = Ev::kGcsEnter, .job = j.id, .processor = j.current,
                 .resource = r, .priority = j.elevated});
  engine_->parkSpinning(j, r, s.holder->id);
  return LockOutcome::kSpinning;
}

void SpinProtocol::onUnlock(Job& j, ResourceId r) {
  SemState& s = sems_[static_cast<std::size_t>(r.value())];
  MPCP_CHECK(s.holder == &j, j.id << " releasing " << r << " it does not hold");

  // Watchdog revocation: forceRelease can revoke a handed-off grant the
  // designated holder never consumed (its processor stalled before the
  // settle that would re-run its P()). Clear the spin mark so that
  // pending P() re-enters the queue instead of spinning on nothing.
  if (j.spinning) engine_->noteSpinGranted(j);

  // Leave the non-preemptive band (flat sections: nothing else is held).
  j.elevated = kPriorityFloor;
  engine_->notePriorityChanged(j);
  engine_->emit({.kind = Ev::kGcsExit, .job = j.id, .processor = j.current,
                 .resource = r, .priority = j.base});

  if (s.queue.empty()) {
    s.holder = nullptr;
    engine_->noteGlobalHolder(r, nullptr);
    engine_->emit({.kind = Ev::kUnlock, .job = j.id, .processor = j.current,
                   .resource = r});
    return;
  }
  Job* next = s.queue.pop();
  s.holder = next;
  engine_->noteGlobalHolder(r, next);
  engine_->counters().res(r).handoffs++;
  engine_->emit({.kind = Ev::kHandoff, .job = j.id, .processor = j.current,
                 .resource = r, .other = next->id});
  engine_->noteSpinGranted(*next);
}

}  // namespace mpcp
