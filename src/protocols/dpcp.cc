#include "protocols/dpcp.h"

#include <algorithm>

#include "common/check.h"
#include "common/strf.h"

namespace mpcp {

DpcpProtocol::DpcpProtocol(const TaskSystem& system,
                           const PriorityTables& tables)
    : system_(&system),
      tables_(&tables),
      local_(system, tables),
      global_(system.resources().size()) {
  // Validate nesting: global-in-global only within one sync processor.
  for (const Task& t : system.tasks()) {
    for (const CriticalSection& cs : t.sections) {
      if (cs.parent < 0) continue;
      const CriticalSection& outer =
          t.sections[static_cast<std::size_t>(cs.parent)];
      const bool inner_global = system.isGlobal(cs.resource);
      const bool outer_global = system.isGlobal(outer.resource);
      if (inner_global != outer_global) {
        throw ConfigError(strf(
            t.name, ": DPCP cannot nest ", toString(ResourceScope::kLocal),
            "/global sections across kinds (", outer.resource, " encloses ",
            cs.resource, ")"));
      }
      if (inner_global && outer_global) {
        const auto pi_in = system.resource(cs.resource).sync_processor;
        const auto pi_out = system.resource(outer.resource).sync_processor;
        if (pi_in != pi_out) {
          throw ConfigError(strf(
              t.name, ": DPCP nested global sections must share a "
              "synchronization processor (", outer.resource, " on ",
              pi_out.value_or(ProcessorId()), " encloses ", cs.resource,
              " on ", pi_in.value_or(ProcessorId()), ")"));
        }
      }
    }
  }
  reserveSemQueues(global_, 2 * system.tasks().size());
}

void DpcpProtocol::attach(Engine& engine) {
  SyncProtocol::attach(engine);
  local_.attach(engine);
}

Priority DpcpProtocol::heldGlobalCeiling(const Job& j) const {
  Priority top = kPriorityFloor;
  for (ResourceId r : j.held) {
    if (system_->isGlobal(r)) {
      top = std::max(top, tables_->ceiling(r));
    }
  }
  return top;
}

LockOutcome DpcpProtocol::onLock(Job& j, ResourceId r) {
  if (!system_->isGlobal(r)) return local_.onLock(j, r);

  SemState& s = global_[static_cast<std::size_t>(r.value())];
  const ProcessorId pi = *system_->resource(r).sync_processor;

  if (s.holder == &j) return LockOutcome::kGranted;  // handed off below
  if (s.holder == nullptr) {
    s.holder = &j;
    engine_->noteGlobalHolder(r, &j);
    j.elevated = tables_->ceiling(r);
    engine_->notePriorityChanged(j);
    engine_->emit({.kind = Ev::kGcsEnter, .job = j.id, .processor = pi,
                   .resource = r, .priority = j.elevated});
    engine_->migrate(j, pi);
    // Queue on the sync processor in request order: without the restamp
    // the agent would carry the job's release-time stamp and jump ahead
    // of equal-ceiling agents granted earlier (handoff-path agents get a
    // fresh stamp via wake(), so this grant path must match).
    engine_->restampArrival(j);
    return LockOutcome::kGranted;
  }
  s.queue.push(&j, j.base);
  engine_->parkWaiting(j, r, s.holder->id);
  return LockOutcome::kWaiting;
}

void DpcpProtocol::onUnlock(Job& j, ResourceId r) {
  if (!system_->isGlobal(r)) {
    local_.onUnlock(j, r);
    return;
  }

  SemState& s = global_[static_cast<std::size_t>(r.value())];
  MPCP_CHECK(s.holder == &j, j.id << " releasing " << r << " it does not hold");

  // Note: the engine pops j.held *after* onUnlock returns, so exclude r
  // explicitly when recomputing the remaining elevation.
  Priority remaining = kPriorityFloor;
  bool skipped_r = false;
  for (ResourceId held : j.held) {
    if (!skipped_r && held == r) {
      skipped_r = true;
      continue;
    }
    if (system_->isGlobal(held)) {
      remaining = std::max(remaining, tables_->ceiling(held));
    }
  }
  j.elevated = remaining;
  engine_->notePriorityChanged(j);
  if (remaining == kPriorityFloor) {
    engine_->emit({.kind = Ev::kGcsExit, .job = j.id, .processor = j.current,
                   .resource = r, .priority = j.base});
    engine_->migrate(j, j.host);  // critical section done; come home
  }

  if (s.queue.empty()) {
    s.holder = nullptr;
    engine_->noteGlobalHolder(r, nullptr);
    engine_->emit({.kind = Ev::kUnlock, .job = j.id, .processor = j.current,
                   .resource = r});
    return;
  }
  Job* next = s.queue.pop();
  s.holder = next;
  engine_->noteGlobalHolder(r, next);
  next->elevated = std::max(next->elevated, tables_->ceiling(r));
  const ProcessorId pi = *system_->resource(r).sync_processor;
  engine_->counters().res(r).handoffs++;
  engine_->emit({.kind = Ev::kHandoff, .job = j.id, .processor = pi,
                 .resource = r, .other = next->id});
  engine_->emit({.kind = Ev::kGcsEnter, .job = next->id, .processor = pi,
                 .resource = r, .priority = next->elevated});
  engine_->migrate(*next, pi);
  engine_->wake(*next);
}

void DpcpProtocol::onJobFinished(Job& j) { local_.onJobFinished(j); }

}  // namespace mpcp
