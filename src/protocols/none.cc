#include "protocols/none.h"

#include "common/check.h"

namespace mpcp {

NoProtocol::NoProtocol(const TaskSystem& system, QueueOrder order)
    : order_(order), sems_(system.resources().size()) {
  reserveSemQueues(sems_, 2 * system.tasks().size());
}

LockOutcome NoProtocol::onLock(Job& j, ResourceId r) {
  SemState& s = sems_[static_cast<std::size_t>(r.value())];
  if (s.holder == nullptr) {
    s.holder = &j;
    engine_->noteGlobalHolder(r, &j);
    return LockOutcome::kGranted;
  }
  if (s.holder == &j) return LockOutcome::kGranted;  // handed off while parked
  // FIFO: key everything equal and let the queue's insertion order decide.
  const Priority key = (order_ == QueueOrder::kPriority)
                           ? j.base
                           : Priority(0);
  s.queue.push(&j, key);
  engine_->parkWaiting(j, r, s.holder->id);
  return LockOutcome::kWaiting;
}

void NoProtocol::onUnlock(Job& j, ResourceId r) {
  SemState& s = sems_[static_cast<std::size_t>(r.value())];
  MPCP_CHECK(s.holder == &j, j.id << " releasing " << r << " it does not hold");
  if (s.queue.empty()) {
    s.holder = nullptr;
    engine_->noteGlobalHolder(r, nullptr);
    engine_->emit({.kind = Ev::kUnlock, .job = j.id, .processor = j.current,
                   .resource = r});
    return;
  }
  Job* next = s.queue.pop();
  s.holder = next;
  engine_->noteGlobalHolder(r, next);
  engine_->counters().res(r).handoffs++;
  engine_->emit({.kind = Ev::kHandoff, .job = j.id, .processor = j.current,
                 .resource = r, .other = next->id});
  engine_->wake(*next);
}

}  // namespace mpcp
