// Message-based (distributed) priority ceiling protocol — the paper's
// reference [8] (Rajkumar, Sha & Lehoczky 1988) and the baseline of
// Section 5.2's comparison.
//
// Every global semaphore S_g is bound to one synchronization processor
// pi(S_g) (ResourceInfo::sync_processor). A job reaching a gcs on S_g
// effectively sends a request there: we model this by *migrating* the
// job's critical section to pi(S_g), where it executes at the full global
// priority ceiling of S_g ("it is suggested that a gcs guarded by S_g
// always execute at a priority equal to the global priority ceiling of
// S_g [8]" — Section 4.4). The job's host processor is free meanwhile —
// lower-priority local jobs run, exactly as under MPCP suspension.
//
// Local semaphores use the uniprocessor PCP on each processor.
//
// Nesting: DPCP legally supports nested global critical sections "as long
// as locks do not cross processor boundaries" (Section 5.2). With
// TaskSystemOptions::allow_nested_global we accept nests whose semaphores
// share a synchronization processor and reject the rest at attach().
#pragma once

#include <vector>

#include "analysis/ceilings.h"
#include "protocols/local_pcp.h"
#include "protocols/sem_state.h"
#include "sim/protocol.h"

namespace mpcp {

class DpcpProtocol final : public SyncProtocol {
 public:
  DpcpProtocol(const TaskSystem& system, const PriorityTables& tables);

  void attach(Engine& engine) override;
  LockOutcome onLock(Job& j, ResourceId r) override;
  void onUnlock(Job& j, ResourceId r) override;
  void onJobFinished(Job& j) override;
  [[nodiscard]] const char* name() const override { return "dpcp"; }

 private:
  /// Highest ceiling among global semaphores `j` still holds, or floor.
  [[nodiscard]] Priority heldGlobalCeiling(const Job& j) const;

  const TaskSystem* system_;
  const PriorityTables* tables_;
  LocalPcp local_;
  std::vector<SemState> global_;  // indexed by resource id; local unused
};

}  // namespace mpcp
