// Spin-based protocols from the post-1990 literature (Brandenburg's
// systematic review): every semaphore — local or global — is a
// non-preemptive spin lock. A contended P() busy-waits: the requester
// keeps its processor, elevated into a band above every task and gcs
// priority, and makes no progress until the holder's V() hands the
// semaphore over; the critical section then runs at the same
// non-preemptive priority. Two grant orders:
//   kFifo     — MSRP-style FIFO spinning: at most one request per remote
//               processor can be ahead of ours, giving the classic
//               sum-of-remote-maxima per-request bound;
//   kPriority — priority-ordered spinning: grants go to the
//               highest-assigned-priority spinner (starvation of low
//               priorities is possible; the bound is a fixpoint).
// Spin jobs never suspend on a lock (the fuzzer audits this), so the
// only preemption/resume points are job release and voluntary
// suspension — which is exactly where spin-based analysis gains over
// suspension-based MPCP. Nesting is rejected: spin sections are flat by
// construction (MSRP's group-lock discipline).
#pragma once

#include <vector>

#include "analysis/ceilings.h"
#include "protocols/sem_state.h"
#include "sim/engine.h"
#include "sim/protocol.h"

namespace mpcp {

enum class SpinOrder {
  kFifo,      ///< grant in arrival order (MSRP)
  kPriority,  ///< grant to the highest assigned priority
};

class SpinProtocol final : public SyncProtocol {
 public:
  /// Throws ConfigError on any nested critical section.
  SpinProtocol(const TaskSystem& system, const PriorityTables& tables,
               SpinOrder order);

  LockOutcome onLock(Job& j, ResourceId r) override;
  void onUnlock(Job& j, ResourceId r) override;
  [[nodiscard]] const char* name() const override {
    return order_ == SpinOrder::kFifo ? "spin-fifo" : "spin-prio";
  }

 private:
  SpinOrder order_;
  /// Non-preemptive band: above every task priority AND every gcs
  /// priority, so a spinner/holder is never displaced.
  Priority np_priority_;
  std::vector<SemState> sems_;
};

}  // namespace mpcp
