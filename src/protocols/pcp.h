// Standalone uniprocessor Priority Ceiling Protocol.
//
// Valid only for task systems with no global resources (each processor's
// problem is independent — Section 4.2 notes the multiprocessor problem
// then decomposes). For systems *with* global resources use MPCP or DPCP;
// constructing PcpProtocol over such a system throws, because "directly
// using" PCP across processors is exactly what Section 3.3 shows to be
// broken (use PipProtocol to reproduce that negative result).
#pragma once

#include "analysis/ceilings.h"
#include "protocols/local_pcp.h"
#include "sim/protocol.h"

namespace mpcp {

class PcpProtocol final : public SyncProtocol {
 public:
  /// Throws ConfigError if `system` has any global resource.
  PcpProtocol(const TaskSystem& system, const PriorityTables& tables);

  void attach(Engine& engine) override;
  LockOutcome onLock(Job& j, ResourceId r) override;
  void onUnlock(Job& j, ResourceId r) override;
  void onJobFinished(Job& j) override;
  [[nodiscard]] const char* name() const override { return "pcp"; }

 private:
  LocalPcp local_;
};

}  // namespace mpcp
