#include "protocols/pip.h"

#include <algorithm>

#include "common/check.h"

namespace mpcp {

PipProtocol::PipProtocol(const TaskSystem& system)
    : sems_(system.resources().size()) {
  reserveSemQueues(sems_, 2 * system.tasks().size());
  boosted_.reserve(sems_.size());
  before_.reserve(sems_.size());
}

LockOutcome PipProtocol::onLock(Job& j, ResourceId r) {
  SemState& s = sems_[static_cast<std::size_t>(r.value())];
  if (s.holder == nullptr) {
    s.holder = &j;
    engine_->noteGlobalHolder(r, &j);
    return LockOutcome::kGranted;
  }
  if (s.holder == &j) return LockOutcome::kGranted;
  s.queue.push(&j, j.base);
  engine_->parkWaiting(j, r, s.holder->id);
  recomputeInheritance();
  return LockOutcome::kWaiting;
}

void PipProtocol::onUnlock(Job& j, ResourceId r) {
  SemState& s = sems_[static_cast<std::size_t>(r.value())];
  MPCP_CHECK(s.holder == &j, j.id << " releasing " << r << " it does not hold");
  if (s.queue.empty()) {
    s.holder = nullptr;
    engine_->noteGlobalHolder(r, nullptr);
    engine_->emit({.kind = Ev::kUnlock, .job = j.id, .processor = j.current,
                   .resource = r});
  } else {
    Job* next = s.queue.pop();
    s.holder = next;
    engine_->noteGlobalHolder(r, next);
    engine_->counters().res(r).handoffs++;
    engine_->emit({.kind = Ev::kHandoff, .job = j.id, .processor = j.current,
                   .resource = r, .other = next->id});
    engine_->wake(*next);
  }
  recomputeInheritance();
}

void PipProtocol::onJobFinished(Job& j) {
  // A finished job holds nothing (engine invariant), so it contributes no
  // inheritance; drop any stale boosted_ pointer to it.
  boosted_.erase(std::remove(boosted_.begin(), boosted_.end(), &j),
                 boosted_.end());
}

void PipProtocol::recomputeInheritance() {
  before_.clear();
  for (Job* h : boosted_) {
    before_.emplace_back(h, h->inherited);
    h->inherited = kPriorityFloor;
  }
  boosted_.clear();

  // Transitive closure: a waiter's effective priority can itself rise when
  // *it* inherits (it may hold other semaphores), so iterate to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (SemState& s : sems_) {
      if (s.holder == nullptr || s.queue.empty()) continue;
      Priority top = kPriorityFloor;
      for (const auto& e : s.queue.entries()) {
        top = std::max(top, e.value->effectivePriority());
      }
      if (top > s.holder->inherited && top > s.holder->base) {
        s.holder->inherited = top;
        changed = true;
      }
    }
  }

  for (SemState& s : sems_) {
    if (s.holder != nullptr && s.holder->inherited != kPriorityFloor) {
      boosted_.push_back(s.holder);
    }
  }
  // Trace inheritance changes (old value restored semantics: emit only on
  // a real change in the final state).
  for (Job* h : boosted_) {
    Priority old = kPriorityFloor;
    for (const auto& [job, prio] : before_) {
      if (job == h) old = prio;
    }
    if (h->inherited != old) {
      engine_->counters().inheritance_updates++;
      engine_->notePriorityChanged(*h);
      engine_->emit({.kind = Ev::kInherit, .job = h->id,
                     .processor = h->current, .priority = h->inherited});
    }
  }
  for (const auto& [job, prio] : before_) {
    if (job->inherited == kPriorityFloor && prio != kPriorityFloor) {
      engine_->counters().inheritance_updates++;
      engine_->notePriorityChanged(*job);
      engine_->emit({.kind = Ev::kInherit, .job = job->id,
                     .processor = job->current, .priority = job->base});
    }
  }
}

}  // namespace mpcp
