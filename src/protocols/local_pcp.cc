#include "protocols/local_pcp.h"

#include <algorithm>

#include "common/check.h"

namespace mpcp {

LocalPcp::LocalPcp(const TaskSystem& system, const PriorityTables& tables)
    : system_(&system),
      tables_(&tables),
      procs_(static_cast<std::size_t>(system.processorCount())) {
  // Pre-size everything the lock/unlock paths append to, so a warmed-up
  // run never reallocates: held sems per processor are bounded by the
  // resource count, parked jobs by the live-job count (~2x tasks).
  const std::size_t max_parked = 2 * system.tasks().size() + 4;
  for (ProcState& ps : procs_) {
    ps.locked.reserve(system.resources().size() + 4);
    ps.parked.reserve(max_parked);
  }
  wake_scratch_.reserve(max_parked);
  old_scratch_.reserve(system.resources().size() + 4);
}

const LocalPcp::LockedSem* LocalPcp::blockingSem(int proc,
                                                 const Job& j) const {
  const LockedSem* best = nullptr;
  for (const LockedSem& ls : procs_[static_cast<std::size_t>(proc)].locked) {
    if (ls.holder == &j) continue;
    if (best == nullptr || ls.ceiling > best->ceiling) best = &ls;
  }
  return best;
}

LockOutcome LocalPcp::onLock(Job& j, ResourceId r) {
  MPCP_CHECK(!system_->isGlobal(r),
             "LocalPcp asked to lock global semaphore " << r);
  const int proc = j.current.value();
  ProcState& ps = procs_[static_cast<std::size_t>(proc)];

  // The job may be retrying after a wake; it is no longer parked.
  ps.parked.erase(std::remove(ps.parked.begin(), ps.parked.end(), &j),
                  ps.parked.end());

  const LockedSem* blocking = blockingSem(proc, j);
  if (blocking == nullptr || j.effectivePriority() > blocking->ceiling) {
    ps.locked.push_back({r, &j, tables_->ceiling(r)});
    return LockOutcome::kGranted;
  }

  engine_->parkWaiting(j, r, blocking->holder->id);
  ps.parked.push_back(&j);
  recomputeInheritance(proc);
  return LockOutcome::kWaiting;
}

void LocalPcp::onUnlock(Job& j, ResourceId r) {
  const int proc = j.current.value();
  ProcState& ps = procs_[static_cast<std::size_t>(proc)];
  auto it = std::find_if(ps.locked.begin(), ps.locked.end(),
                         [&](const LockedSem& ls) {
                           return ls.resource == r && ls.holder == &j;
                         });
  MPCP_CHECK(it != ps.locked.end(),
             j.id << " releasing local " << r << " it does not hold");
  ps.locked.erase(it);

  engine_->emit({.kind = Ev::kUnlock, .job = j.id, .processor = j.current,
                 .resource = r});

  // The releaser's inheritance must be re-derived from what it still
  // holds; recomputeInheritance() only resets current holders, so clear
  // here in case this was j's last semaphore.
  if (j.inherited != kPriorityFloor) {
    j.inherited = kPriorityFloor;
    engine_->counters().inheritance_updates++;
    engine_->notePriorityChanged(j);
    engine_->emit({.kind = Ev::kInherit, .job = j.id, .processor = j.current,
                   .priority = j.base});
  }

  // Blocking conditions changed: wake every parked job for a retry. The
  // dispatcher serves them highest-priority-first; losers re-park.
  // (Copy into scratch rather than swap: ps.parked keeps its capacity.)
  wake_scratch_.assign(ps.parked.begin(), ps.parked.end());
  ps.parked.clear();
  for (Job* w : wake_scratch_) engine_->wake(*w);

  recomputeInheritance(proc);
}

void LocalPcp::onJobFinished(Job& j) {
  const int proc = j.current.value();
  ProcState& ps = procs_[static_cast<std::size_t>(proc)];
  ps.parked.erase(std::remove(ps.parked.begin(), ps.parked.end(), &j),
                  ps.parked.end());
  MPCP_DCHECK(std::none_of(ps.locked.begin(), ps.locked.end(),
                           [&](const LockedSem& ls) { return ls.holder == &j; }),
              j.id << " finished while holding a local semaphore");
}

void LocalPcp::recomputeInheritance(int proc) {
  ProcState& ps = procs_[static_cast<std::size_t>(proc)];

  old_scratch_.clear();
  for (const LockedSem& ls : ps.locked) {
    if (std::none_of(old_scratch_.begin(), old_scratch_.end(),
                     [&](const auto& p) { return p.first == ls.holder; })) {
      old_scratch_.emplace_back(ls.holder, ls.holder->inherited);
      ls.holder->inherited = kPriorityFloor;
    }
  }

  // Transitive inheritance: a parked job J is blocked by the semaphore
  // S* = blockingSem(J); S*'s holder inherits J's effective priority.
  // A holder may itself be parked, so propagate to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Job* parked : ps.parked) {
      const LockedSem* blocking = blockingSem(proc, *parked);
      if (blocking == nullptr) continue;  // will succeed on retry
      const Priority p = parked->effectivePriority();
      if (p > blocking->holder->inherited && p > blocking->holder->base) {
        blocking->holder->inherited = p;
        changed = true;
      }
    }
  }

  for (const auto& [holder, prev] : old_scratch_) {
    if (holder->inherited != prev) {
      engine_->counters().inheritance_updates++;
      engine_->notePriorityChanged(*holder);
      engine_->emit({.kind = Ev::kInherit, .job = holder->id,
                     .processor = holder->current,
                     .priority = holder->inherited == kPriorityFloor
                                     ? holder->base
                                     : holder->inherited});
    }
  }
}

}  // namespace mpcp
