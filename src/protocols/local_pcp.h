// Uniprocessor Priority Ceiling Protocol, instantiated per processor —
// both the standalone PCP protocol and the local-semaphore component of
// the shared-memory protocol (MPCP rule 2) and of DPCP.
//
// Rule (Section 5, step 2): a job J on processor p may lock local
// semaphore S iff J's priority exceeds the highest priority ceiling among
// local semaphores currently locked by *other* jobs on p. Otherwise J
// blocks and the holder of that highest-ceiling semaphore inherits J's
// (effective) priority until release. Inheritance is transitive.
//
// Mechanics: a blocked job is parked; every local unlock on p wakes all
// parked jobs on p, which re-run the ceiling test when dispatched (the
// engine's wake-and-retry contract). Blocking conditions only change at
// unlock events, so this is exact, and the priority order of re-dispatch
// guarantees the highest-priority blocked job is served first.
#pragma once

#include <vector>

#include "analysis/ceilings.h"
#include "sim/engine.h"
#include "sim/job.h"

namespace mpcp {

class Engine;

/// PCP state for all processors' local semaphores. Not a SyncProtocol
/// itself — PcpProtocol, MpcpProtocol and DpcpProtocol embed it.
class LocalPcp {
 public:
  LocalPcp(const TaskSystem& system, const PriorityTables& tables);

  void attach(Engine& engine) { engine_ = &engine; }

  /// P(S) for a local semaphore. Parks the job on failure.
  LockOutcome onLock(Job& j, ResourceId r);

  /// V(S) for a local semaphore; wakes parked jobs for retry.
  void onUnlock(Job& j, ResourceId r);

  /// Drops bookkeeping for a finished or torn-down job.
  void onJobFinished(Job& j);

 private:
  struct LockedSem {
    ResourceId resource;
    Job* holder;
    Priority ceiling;
  };
  struct ProcState {
    std::vector<LockedSem> locked;  // local semaphores currently held
    std::vector<Job*> parked;       // jobs blocked by the ceiling test
  };

  /// Highest-ceiling semaphore locked by a job other than `j` on `proc`;
  /// nullptr if none.
  const LockedSem* blockingSem(int proc, const Job& j) const;
  void recomputeInheritance(int proc);

  const TaskSystem* system_;
  const PriorityTables* tables_;
  Engine* engine_ = nullptr;
  std::vector<ProcState> procs_;
  // Scratch buffers (members so the lock/unlock paths stay
  // allocation-free once warmed; never used reentrantly).
  std::vector<Job*> wake_scratch_;
  std::vector<std::pair<Job*, Priority>> old_scratch_;
};

}  // namespace mpcp
