#include "protocols/pcp.h"

#include "common/check.h"
#include "common/strf.h"

namespace mpcp {

PcpProtocol::PcpProtocol(const TaskSystem& system,
                         const PriorityTables& tables)
    : local_(system, tables) {
  if (system.hasGlobalResources()) {
    throw ConfigError(
        "PcpProtocol is a uniprocessor protocol: the task system has global "
        "resources; use MpcpProtocol or DpcpProtocol");
  }
}

void PcpProtocol::attach(Engine& engine) {
  SyncProtocol::attach(engine);
  local_.attach(engine);
}

LockOutcome PcpProtocol::onLock(Job& j, ResourceId r) {
  return local_.onLock(j, r);
}

void PcpProtocol::onUnlock(Job& j, ResourceId r) { local_.onUnlock(j, r); }

void PcpProtocol::onJobFinished(Job& j) { local_.onJobFinished(j); }

}  // namespace mpcp
