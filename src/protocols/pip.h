// Priority Inheritance Protocol (Sha/Rajkumar/Lehoczky [10]), extended
// across processors: the holder of a semaphore executes at the maximum
// effective priority of the jobs waiting on any semaphore it holds,
// transitively. Queues are priority-ordered.
//
// PIP fixes Example 1 (remote holder preempted by middle-priority local
// jobs) but — as Example 2 and Section 3.3 show — it cannot bound remote
// blocking by critical-section durations: a waiter still loses to *higher*
// priority non-critical execution on the holder's processor. The MPCP
// benches use PIP as the "inheritance alone is not enough" baseline.
#pragma once

#include <vector>

#include "protocols/sem_state.h"
#include "sim/engine.h"
#include "sim/protocol.h"

namespace mpcp {

class PipProtocol final : public SyncProtocol {
 public:
  explicit PipProtocol(const TaskSystem& system);

  LockOutcome onLock(Job& j, ResourceId r) override;
  void onUnlock(Job& j, ResourceId r) override;
  void onJobFinished(Job& j) override;
  [[nodiscard]] const char* name() const override { return "pip"; }

 private:
  void recomputeInheritance();

  std::vector<SemState> sems_;
  std::vector<Job*> boosted_;  // jobs whose `inherited` we set last pass
  // Scratch for recomputeInheritance(); a member so the recompute path
  // stays allocation-free once warmed.
  std::vector<std::pair<Job*, Priority>> before_;
};

}  // namespace mpcp
