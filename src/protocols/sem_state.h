// Shared semaphore bookkeeping for queue-based protocols.
#pragma once

#include <vector>

#include "common/stable_priority_queue.h"
#include "sim/job.h"

namespace mpcp {

/// One binary semaphore: current holder + wait queue. Queue keys are
/// chosen by the protocol (assigned priority for the paper's protocols,
/// insertion-order for FIFO variants).
struct SemState {
  Job* holder = nullptr;
  StablePriorityQueue<Job*> queue;
};

/// Pre-sizes every wait queue so steady-state locking never reallocates
/// (part of the zero-allocation-per-run guarantee; see DESIGN.md). The
/// bound is callers' worst case on simultaneous waiters, typically a
/// small multiple of the task count.
inline void reserveSemQueues(std::vector<SemState>& sems,
                             std::size_t waiters) {
  for (SemState& s : sems) s.queue.reserve(waiters);
}

}  // namespace mpcp
