// Shared semaphore bookkeeping for queue-based protocols.
#pragma once

#include <vector>

#include "common/stable_priority_queue.h"
#include "sim/job.h"

namespace mpcp {

/// One binary semaphore: current holder + wait queue. Queue keys are
/// chosen by the protocol (assigned priority for the paper's protocols,
/// insertion-order for FIFO variants).
struct SemState {
  Job* holder = nullptr;
  StablePriorityQueue<Job*> queue;
};

}  // namespace mpcp
