// NoProtocol: semaphores with no priority management — the strawman of
// Section 1/3. A P() on a held semaphore suspends the requester in the
// wait queue; V() hands the semaphore to the queue head. No inheritance,
// no ceilings, no elevated gcs priorities. Under this protocol the
// examples of Section 3.3 exhibit unbounded remote blocking: a holder
// preempted by middle-priority jobs keeps every waiter waiting.
#pragma once

#include <vector>

#include "protocols/sem_state.h"
#include "sim/engine.h"
#include "sim/protocol.h"

namespace mpcp {

enum class QueueOrder {
  kFifo,      ///< grant in arrival order
  kPriority,  ///< grant to the highest assigned priority (paper's rule 6)
};

class NoProtocol final : public SyncProtocol {
 public:
  explicit NoProtocol(const TaskSystem& system,
                      QueueOrder order = QueueOrder::kFifo);

  LockOutcome onLock(Job& j, ResourceId r) override;
  void onUnlock(Job& j, ResourceId r) override;
  [[nodiscard]] const char* name() const override { return "none"; }

 private:
  QueueOrder order_;
  std::vector<SemState> sems_;
  std::uint64_t arrivals_ = 0;  // FIFO keying
};

}  // namespace mpcp
