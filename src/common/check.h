// Assertion and error-reporting plumbing used across the mpcp libraries.
//
// Two families:
//   MPCP_CHECK(cond, msg)   -- always-on invariant check; throws InvariantError.
//   MPCP_DCHECK(cond, msg)  -- debug-only (compiled out under NDEBUG).
//
// We throw instead of aborting so that property tests can assert that
// invalid configurations are rejected, and so library users get a
// recoverable error channel (C++ Core Guidelines E.2/E.3: use exceptions
// for error handling, not logic flow).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mpcp {

/// Raised when a library-level invariant is violated (internal bug or
/// API misuse detected at a checkpoint).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Raised when user-supplied configuration is malformed (bad task system,
/// out-of-range parameter, unsupported nesting, ...).
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace mpcp

#define MPCP_CHECK(cond, msg)                                                \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::mpcp::detail::check_failed("MPCP_CHECK", #cond, __FILE__, __LINE__,  \
                                   (std::ostringstream{} << msg).str());     \
    }                                                                        \
  } while (false)

#ifdef NDEBUG
#define MPCP_DCHECK(cond, msg) \
  do {                         \
  } while (false)
#else
#define MPCP_DCHECK(cond, msg) MPCP_CHECK(cond, msg)
#endif
