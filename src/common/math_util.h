// Small integer math used throughout the scheduling analysis.
#pragma once

#include <cstdint>
#include <numeric>

#include "common/check.h"
#include "common/types.h"

namespace mpcp {

/// ceil(a / b) for positive integers — the analysis' ⌈T_i / T_j⌉ terms.
constexpr std::int64_t ceilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Least common multiple with overflow check; hyperperiods of generated
/// task sets can explode, so callers must be able to detect saturation.
/// Returns kTimeInfinity on overflow.
constexpr Time lcmSaturating(Time a, Time b) {
  if (a == 0 || b == 0) return 0;
  const Time g = std::gcd(a, b);
  const Time a_red = a / g;
  if (a_red > kTimeInfinity / b) return kTimeInfinity;
  return a_red * b;
}

}  // namespace mpcp
