// Priority representation.
//
// The paper orders priorities P_1 > P_2 > ... with P_1 highest and then
// introduces a *second band* above every task priority for global critical
// sections: a base ceiling P_G > P_H (P_H = highest task priority in the
// system) so that gcs priorities are P_G + P_i (Section 4.4).
//
// We encode priority as a single integer "urgency" where LARGER means MORE
// URGENT. Rate-monotonic assignment gives tasks urgencies in [1, P_H]. The
// global band starts at kGlobalBand offset computed per task system:
//   gcs priority    = globalBase + urgency(highest remote user)
//   global ceiling  = globalBase + urgency(highest user anywhere)
// with globalBase > P_H, so any gcs out-prioritizes all normal execution —
// exactly the paper's two-band structure.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace mpcp {

/// A scheduling priority; larger value = more urgent. Value-semantic,
/// totally ordered. Default-constructed priority is "lowest possible"
/// (used for idle / unset).
class Priority {
 public:
  constexpr Priority() = default;
  constexpr explicit Priority(std::int32_t urgency) : urgency_(urgency) {}

  [[nodiscard]] constexpr std::int32_t urgency() const { return urgency_; }

  /// Returns this priority raised into the global-ceiling band anchored at
  /// `global_base` (the paper's P_G): result = P_G + urgency.
  [[nodiscard]] constexpr Priority inGlobalBand(Priority global_base) const {
    return Priority(global_base.urgency_ + urgency_);
  }

  friend constexpr auto operator<=>(Priority, Priority) = default;

  friend std::ostream& operator<<(std::ostream& os, Priority p) {
    return os << "prio:" << p.urgency_;
  }

 private:
  std::int32_t urgency_ = INT32_MIN;
};

/// Lowest representable priority; compares below every task priority.
inline constexpr Priority kPriorityFloor{};

}  // namespace mpcp
