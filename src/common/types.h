// Core value types shared by every mpcp library: simulated time and
// strongly-typed entity identifiers.
//
// Time is integral (ticks). The paper's examples use unit-length steps
// (Figure 5-1 advances t=0..13); an integer clock keeps the discrete-event
// simulator exact and reproducible. One tick has no fixed physical
// meaning — task generators typically treat it as a microsecond.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace mpcp {

/// Simulated time instant, in ticks since simulation start.
using Time = std::int64_t;

/// A span of simulated time, in ticks.
using Duration = std::int64_t;

/// Sentinel for "no event scheduled / unbounded".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

namespace detail {

/// CRTP-free strongly typed integer id. Tag makes TaskId / ResourceId /
/// ProcessorId mutually unassignable while staying trivially copyable.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::int32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::int32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << Tag::prefix() << id.value_;
  }

 private:
  std::int32_t value_ = -1;
};

}  // namespace detail

struct TaskTag {
  static constexpr const char* prefix() { return "tau"; }
};
struct ResourceTag {
  static constexpr const char* prefix() { return "S"; }
};
struct ProcessorTag {
  static constexpr const char* prefix() { return "P"; }
};

/// Identifies a task (the paper's tau_i). Ids index into TaskSystem::tasks().
using TaskId = detail::Id<TaskTag>;
/// Identifies a semaphore/resource (the paper's S_k).
using ResourceId = detail::Id<ResourceTag>;
/// Identifies a processor (the paper's script-P_j).
using ProcessorId = detail::Id<ProcessorTag>;

/// Identifies one job (task instance): task + zero-based instance count.
struct JobId {
  TaskId task;
  std::int64_t instance = 0;

  friend constexpr auto operator<=>(const JobId&, const JobId&) = default;

  friend std::ostream& operator<<(std::ostream& os, const JobId& j) {
    return os << "J(" << j.task << "#" << j.instance << ")";
  }
};

}  // namespace mpcp

template <typename Tag>
struct std::hash<mpcp::detail::Id<Tag>> {
  std::size_t operator()(mpcp::detail::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};

template <>
struct std::hash<mpcp::JobId> {
  std::size_t operator()(const mpcp::JobId& j) const noexcept {
    return std::hash<std::int64_t>{}(
        (static_cast<std::int64_t>(j.task.value()) << 40) ^ j.instance);
  }
};
