// Per-run bump allocator.
//
// A simulation run's scratch buffers (dirty-processor words, advance-loop
// snapshots, timing-wheel drain staging) are all sized once from the task
// system and live exactly as long as the run. Giving them individual
// heap allocations scatters them across the address space and — worse —
// puts vector-growth reallocation on the hot path. The arena carves them
// out of a handful of large blocks instead: allocation is a pointer bump,
// locality follows allocation order, and reset() recycles every block for
// the next run without returning memory to the OS.
//
// Not a general-purpose allocator: no per-object free, trivially-
// destructible payloads only (nothing runs destructors), single-threaded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace mpcp {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(std::size_t first_block_bytes = kDefaultBlockBytes)
      : next_block_bytes_(first_block_bytes > 0 ? first_block_bytes
                                                : kDefaultBlockBytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns uninitialized storage for `n` objects of T, aligned to
  /// alignof(T). T must be trivially destructible (nothing is ever
  /// destroyed). n == 0 returns a non-null, properly aligned pointer.
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(allocBytes(n * sizeof(T), alignof(T)));
  }

  /// Returns zero-initialized storage for `n` objects of T.
  template <typename T>
  [[nodiscard]] T* allocZeroed(std::size_t n) {
    T* p = alloc<T>(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = T{};
    return p;
  }

  /// Rewinds every block for reuse. Previously returned pointers become
  /// dangling; block storage (and hence highWater capacity) is kept.
  void reset() {
    for (Block& b : blocks_) b.used = 0;
    current_ = 0;
    bytes_used_ = 0;
  }

  /// Bytes handed out since construction / last reset() (including
  /// alignment padding).
  [[nodiscard]] std::size_t bytesUsed() const { return bytes_used_; }

  /// Maximum bytesUsed() ever observed — sizes the next run's first block.
  [[nodiscard]] std::size_t highWater() const { return high_water_; }

  /// Total bytes owned across all blocks.
  [[nodiscard]] std::size_t bytesReserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  [[nodiscard]] std::size_t blockCount() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] void* allocBytes(std::size_t bytes, std::size_t align) {
    MPCP_CHECK(align > 0 && (align & (align - 1)) == 0,
               "Arena: alignment must be a power of two");
    // Find (or create) a block with room for the aligned request.
    while (true) {
      if (current_ >= blocks_.size()) {
        const std::size_t want = bytes + align;
        std::size_t size = next_block_bytes_;
        while (size < want) size *= 2;
        blocks_.push_back(
            {std::make_unique<std::byte[]>(size), size, 0});
        next_block_bytes_ = size * 2;  // geometric growth
      }
      Block& b = blocks_[current_];
      const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
      const std::size_t aligned =
          (static_cast<std::size_t>(base) + b.used + align - 1) & ~(align - 1);
      const std::size_t offset = aligned - static_cast<std::size_t>(base);
      if (offset + bytes <= b.size) {
        const std::size_t consumed = offset + bytes - b.used;
        b.used = offset + bytes;
        bytes_used_ += consumed;
        if (bytes_used_ > high_water_) high_water_ = bytes_used_;
        return b.data.get() + offset;
      }
      ++current_;  // block full; spill to the next (or grow)
    }
  }

  std::vector<Block> blocks_;
  std::size_t current_ = 0;
  std::size_t next_block_bytes_;
  std::size_t bytes_used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace mpcp
