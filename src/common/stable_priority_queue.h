// Priority queue with FIFO tie-breaking — the paper's "prioritized queue"
// on semaphores (protocol rule 6) and the per-processor ready queue both
// need (a) strict priority order, (b) FCFS among equal priorities
// (Section 3.1: "Jobs with the same priority are executed in a FCFS
// discipline"), and (c) arbitrary removal (a queued job can be withdrawn
// when its task system is torn down or a protocol migrates it).
//
// Sizes are small (tens of entries), so a sorted vector beats a heap on
// simplicity and gives deterministic iteration for tests and traces.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/priority.h"

namespace mpcp {

/// Max-priority queue over values of type T with stable FIFO order among
/// equal priorities. T must be equality-comparable for remove().
template <typename T>
class StablePriorityQueue {
 public:
  struct Entry {
    Priority priority;
    std::uint64_t seq;  // insertion order; smaller = earlier
    T value;
  };

  /// Inserts `value` with `priority`. O(n).
  void push(T value, Priority priority) {
    pushSeq(std::move(value), priority, next_seq_++);
  }

  /// Inserts `value` with an explicit tie-break sequence number instead of
  /// the queue's own counter — for callers (the engine's ready queues)
  /// whose FIFO order is defined by a global arrival stamp that must
  /// survive removal and re-insertion (priority re-keying, migration).
  /// Callers must not mix push() and pushSeq() on one queue.
  void pushSeq(T value, Priority priority, std::uint64_t seq) {
    const Entry entry{priority, seq, std::move(value)};
    // Keep entries_ sorted best-first: higher priority first, then FIFO.
    auto pos = std::find_if(entries_.begin(), entries_.end(),
                            [&](const Entry& e) { return before(entry, e); });
    entries_.insert(pos, entry);
  }

  /// Removes and returns the highest-priority (earliest among ties) value.
  T pop() {
    MPCP_CHECK(!entries_.empty(), "pop() from empty queue");
    T out = std::move(entries_.front().value);
    entries_.erase(entries_.begin());
    return out;
  }

  /// Highest-priority value without removing it.
  [[nodiscard]] const T& peek() const {
    MPCP_CHECK(!entries_.empty(), "peek() on empty queue");
    return entries_.front().value;
  }

  /// Priority of the head entry.
  [[nodiscard]] Priority peekPriority() const {
    MPCP_CHECK(!entries_.empty(), "peekPriority() on empty queue");
    return entries_.front().priority;
  }

  /// Removes the first entry equal to `value`; returns true if found.
  bool remove(const T& value) {
    auto pos = std::find_if(entries_.begin(), entries_.end(),
                            [&](const Entry& e) { return e.value == value; });
    if (pos == entries_.end()) return false;
    entries_.erase(pos);
    return true;
  }

  /// True if an entry equal to `value` is queued.
  [[nodiscard]] bool contains(const T& value) const {
    return std::any_of(entries_.begin(), entries_.end(),
                       [&](const Entry& e) { return e.value == value; });
  }

  /// Pre-sizes backing storage (allocation-free steady state).
  void reserve(std::size_t n) { entries_.reserve(n); }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Entries best-first, for trace/inspection.
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  void clear() { entries_.clear(); }

 private:
  static bool before(const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq < b.seq;
  }

  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mpcp
