// Deterministic random number generation for workload synthesis and
// property tests.
//
// xoshiro256** (Blackman & Vigna) seeded via SplitMix64: fast, high
// quality, and — unlike std::mt19937 streams combined with unspecified
// std::uniform_* distributions — gives bit-identical sequences across
// standard libraries, so recorded experiment seeds reproduce exactly.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.h"

namespace mpcp {

/// Self-contained 64-bit PRNG with convenience draws. Copyable: copy a
/// generator to fork a reproducible substream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit draw.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    MPCP_CHECK(lo <= hi, "uniformInt range inverted: " << lo << ".." << hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    // Lemire-style rejection-free-enough bounded draw (modulo bias is
    // negligible for our spans vs 2^64, but reject the biased tail anyway).
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
    std::uint64_t draw = next();
    while (draw >= limit) draw = next();
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniformReal(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform01() < p; }

  /// Uniform pick of an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    MPCP_CHECK(n > 0, "index() over empty range");
    return static_cast<std::size_t>(uniformInt(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename Vec>
  void shuffle(Vec& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mpcp
