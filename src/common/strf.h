// Tiny string-building helpers (libstdc++ 12 lacks <format>).
#pragma once

#include <sstream>
#include <string>

namespace mpcp {

/// Streams all arguments into one string: strf("t=", t, " job=", j).
template <typename... Args>
std::string strf(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

/// Left-pads `s` with spaces to at least `width` characters.
inline std::string padLeft(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

/// Right-pads `s` with spaces to at least `width` characters.
inline std::string padRight(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

}  // namespace mpcp
