// PriorityMutex: the paper's global semaphore implementation
// (Section 5.4), usable from real threads.
//
//   * Fast path: one atomic RMW acquires a free semaphore — "if the P()
//     operation is successful, no further operations need be carried out".
//   * Slow path: the requester takes the queue spinlock S_x, enqueues
//     itself in *priority order* (FIFO among equals), releases S_x, and
//     waits on its own flag — each waiter spins on its own cache line
//     (local spinning), or parks on a per-node futex-style condition
//     variable when WaitMode::kBlock models the paper's interprocessor-
//     interrupt alternative.
//   * Release: the holder takes S_x, pops the highest-priority waiter and
//     *transfers the lock directly* ("awakens the task and transfers to it
//     the lock on S_g"); with no waiters it simply clears the semaphore.
//
// Direct handoff means the semaphore word never becomes free while
// waiters exist, so barging cannot violate the priority order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "runtime/spinlock.h"

namespace mpcp::runtime {

enum class WaitMode {
  kSpin,   ///< local spin on the waiter's own flag (paper's default)
  kBlock,  ///< park on a condition variable (interprocessor-interrupt model)
};

class PriorityMutex {
 public:
  explicit PriorityMutex(WaitMode mode = WaitMode::kSpin) : mode_(mode) {}
  PriorityMutex(const PriorityMutex&) = delete;
  PriorityMutex& operator=(const PriorityMutex&) = delete;

  /// Acquires the mutex; among concurrent waiters the highest `priority`
  /// (larger = more urgent) wins, FIFO within a priority.
  void lock(std::int32_t priority);

  /// Single-attempt acquisition (the paper's bare RMW); never queues.
  [[nodiscard]] bool try_lock();

  /// Releases, handing off to the best waiter if any.
  void unlock();

  // --- instrumentation (relaxed counters; read between benchmark runs) ---
  [[nodiscard]] std::uint64_t contendedAcquisitions() const {
    return contended_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t handoffs() const {
    return handoffs_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) WaitNode {  // own cache line: local spinning
    std::atomic<bool> granted{false};
    std::int32_t priority = 0;
    std::uint64_t seq = 0;
    WaitNode* next = nullptr;
    // kBlock support
    std::mutex m;
    std::condition_variable cv;
  };

  void waitOn(WaitNode& node);
  void grant(WaitNode& node);

  WaitMode mode_;
  std::atomic<bool> held_{false};
  Spinlock guard_;           // S_x: protects the wait list
  WaitNode* waiters_ = nullptr;  // sorted: best first
  std::uint64_t next_seq_ = 0;
  std::atomic<std::uint64_t> contended_{0};
  std::atomic<std::uint64_t> handoffs_{0};
};

}  // namespace mpcp::runtime
