#include "runtime/priority_mutex.h"

namespace mpcp::runtime {

void PriorityMutex::lock(std::int32_t priority) {
  // Fast path: atomic RMW on the semaphore word.
  if (!held_.exchange(true, std::memory_order_acquire)) return;

  contended_.fetch_add(1, std::memory_order_relaxed);
  WaitNode node;
  node.priority = priority;

  guard_.lock();
  // Re-check under the queue lock: the holder may have released between
  // our failed RMW and the enqueue; without this we could park forever.
  if (!held_.exchange(true, std::memory_order_acquire)) {
    guard_.unlock();
    return;
  }
  node.seq = next_seq_++;
  // Insert in priority order, FIFO among equals (stable by seq).
  WaitNode** link = &waiters_;
  while (*link != nullptr && ((*link)->priority > node.priority ||
                              ((*link)->priority == node.priority &&
                               (*link)->seq < node.seq))) {
    link = &(*link)->next;
  }
  node.next = *link;
  *link = &node;
  guard_.unlock();

  waitOn(node);
  // Ownership was transferred to us by the releasing thread; held_ is
  // still true and now means "us".
}

bool PriorityMutex::try_lock() {
  return !held_.exchange(true, std::memory_order_acquire);
}

void PriorityMutex::unlock() {
  guard_.lock();
  WaitNode* best = waiters_;
  if (best == nullptr) {
    guard_.unlock();
    held_.store(false, std::memory_order_release);
    return;
  }
  waiters_ = best->next;
  guard_.unlock();
  handoffs_.fetch_add(1, std::memory_order_relaxed);
  grant(*best);  // direct handoff: held_ stays true for the new owner
}

void PriorityMutex::waitOn(WaitNode& node) {
  if (mode_ == WaitMode::kSpin) {
    int spins = 0;
    while (!node.granted.load(std::memory_order_acquire)) {
      if (++spins >= kSpinsBeforeYield) {
        spins = 0;
        std::this_thread::yield();
      } else {
        Spinlock::cpuRelax();
      }
    }
    return;
  }
  std::unique_lock<std::mutex> lk(node.m);
  node.cv.wait(lk, [&] {
    return node.granted.load(std::memory_order_acquire);
  });
}

void PriorityMutex::grant(WaitNode& node) {
  if (mode_ == WaitMode::kSpin) {
    node.granted.store(true, std::memory_order_release);
    return;
  }
  {
    // The lock/unlock pair orders the store against the waiter's
    // predicate check, preventing a lost wakeup.
    std::lock_guard<std::mutex> lk(node.m);
    node.granted.store(true, std::memory_order_release);
  }
  node.cv.notify_one();
}

}  // namespace mpcp::runtime
