// Test-and-test-and-set spinlock — the "user-transparent semaphore S_x"
// of Section 5.4 that guards each global semaphore's wait queue. Spinning
// reads a (cache-resident) copy and only attempts the RMW when the lock
// looks free, the bus-traffic-avoidance technique the paper cites [2].
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace mpcp::runtime {

/// After this many local spins a waiter yields the CPU. On the dedicated
/// processors the paper assumes, the limit is never reached; on an
/// oversubscribed host (CI, laptops) it keeps the lock holder runnable
/// instead of live-locking behind a descheduled owner.
inline constexpr int kSpinsBeforeYield = 1024;

class Spinlock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Local spin: read-only until the lock looks free.
      int spins = 0;
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins >= kSpinsBeforeYield) {
          spins = 0;
          std::this_thread::yield();
        } else {
          cpuRelax();
        }
      }
    }
  }

  bool try_lock() noexcept {
    return !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  static void cpuRelax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  std::atomic<bool> locked_{false};
};

/// Naive test-and-set lock with *global* spinning — every retry is an RMW
/// on the shared line. Used only as the bus-traffic strawman in the
/// runtime bench (rmw_attempts approximates interconnect transactions).
class TasLock {
 public:
  void lock() noexcept {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      rmw_attempts_.fetch_add(1, std::memory_order_relaxed);
    }
    rmw_attempts_.fetch_add(1, std::memory_order_relaxed);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  /// Total RMW operations issued (bus-transaction proxy).
  [[nodiscard]] std::uint64_t rmwAttempts() const noexcept {
    return rmw_attempts_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> locked_{false};
  std::atomic<std::uint64_t> rmw_attempts_{0};
};

}  // namespace mpcp::runtime
