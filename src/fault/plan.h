// Deterministic fault injection and containment policy configuration.
//
// The paper's blocking bounds (Theorems 2-5) assume every job respects
// its declared WCET and critical-section durations, holders always
// release, releases are strictly periodic, and processors never pause.
// A FaultPlan violates those assumptions on purpose — deterministically,
// from a seed — so the simulator can measure how each protocol degrades
// and whether a containment policy restores liveness:
//   * kWcetOverrun   — stretch a job's non-critical compute by a factor
//                      and/or a one-shot absolute delta;
//   * kCsOverrun     — stretch compute *inside* a critical section;
//   * kStuckHolder   — the job never executes the V(S) of a section:
//                      it spins at the unlock site holding S forever;
//   * kReleaseJitter — delay a job's release past its nominal time
//                      (the deadline stays relative to the nominal);
//   * kProcStall     — a processor executes nothing during [start,
//                      start+length) (e.g. an SMM/firmware window).
//
// Containment is orthogonal and selected per run via ContainmentConfig:
// observe only, budget-enforce (kill a gcs exceeding its declared
// duration x grace), job-abort / skip-next-release on a deadline miss,
// and a holder watchdog that force-releases a stuck global semaphore.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "model/task_system.h"

namespace mpcp::fault {

enum class FaultKind {
  kWcetOverrun,
  kCsOverrun,
  kStuckHolder,
  kReleaseJitter,
  kProcStall,
};

[[nodiscard]] const char* toString(FaultKind k);

/// Bit for `k` in a per-job "already injected" mask.
[[nodiscard]] constexpr std::uint32_t bitOf(FaultKind k) {
  return std::uint32_t{1} << static_cast<int>(k);
}

/// One injected fault. Which fields matter depends on `kind`; unused
/// fields keep their defaults.
struct FaultSpec {
  FaultKind kind = FaultKind::kWcetOverrun;
  TaskId task;                 ///< victim task (all kinds but kProcStall)
  std::int64_t instance = -1;  ///< job instance; -1 = every instance
  ResourceId resource;         ///< kCsOverrun/kStuckHolder; invalid = any
  ProcessorId processor;       ///< kProcStall only
  double factor = 1.0;         ///< multiplicative stretch, >= 1
  Duration delta = 0;          ///< additive ticks (one-shot for WCET)
  Time start = 0;              ///< kProcStall window start
  Duration length = 0;         ///< kProcStall window length

  [[nodiscard]] bool matches(TaskId t, std::int64_t inst) const {
    return task == t && (instance < 0 || instance == inst);
  }
};

/// Result of applying a plan to one compute op.
struct ComputeEffect {
  Duration duration = 0;     ///< stretched op length
  std::uint32_t kinds = 0;   ///< bitOf() mask of kinds that changed it
  bool delta_used = false;   ///< a one-shot WCET delta was consumed
};

struct FaultPlan {
  std::vector<FaultSpec> specs;

  [[nodiscard]] bool empty() const { return specs.empty(); }
  /// True when the reference simulator can mirror every spec (everything
  /// except processor stalls, which only the engine models).
  [[nodiscard]] bool mirrorable() const;
  [[nodiscard]] bool hasStalls() const;

  /// Rejects specs referencing unknown tasks/resources/processors or
  /// with nonsensical magnitudes. Error messages name the field.
  void validate(const TaskSystem& sys) const;

  /// Stretched duration for a compute op of `base` ticks run by
  /// (task, instance). `inner` is the innermost held resource (invalid
  /// when outside any critical section); `allow_delta` gates the
  /// one-shot WCET delta (the caller clears it after first use).
  [[nodiscard]] ComputeEffect computeEffect(TaskId task,
                                            std::int64_t instance,
                                            Duration base, ResourceId inner,
                                            bool allow_delta) const;

  /// True if (task, instance) never executes the V() of resource `r`.
  [[nodiscard]] bool stuckAt(TaskId task, std::int64_t instance,
                             ResourceId r) const;

  /// Release delay for (task, instance); 0 = on time. Callers clamp to
  /// period - 1 so at most one release is ever outstanding.
  [[nodiscard]] Duration releaseJitter(TaskId task,
                                       std::int64_t instance) const;

  /// True if processor `p` is inside a stall window at time `t`.
  [[nodiscard]] bool stalled(ProcessorId p, Time t) const;

  /// Earliest stall-window edge strictly after `t` (kTimeInfinity when
  /// none) — an extra wake-up candidate for the engine's event clock.
  [[nodiscard]] Time nextStallBoundary(Time t) const;

  /// Draws `count` specs aimed at `sys` (tasks that exist, resources
  /// they actually lock). Deterministic in `rng`.
  [[nodiscard]] static FaultPlan random(Rng& rng, const TaskSystem& sys,
                                        int count);
};

/// What to do when a job misses its deadline while a containment policy
/// is active.
enum class MissAction {
  kNone,
  kAbortJob,          ///< retire the job at the next safe point
  kSkipNextRelease,   ///< suppress the task's next release (load shed)
};

struct ContainmentConfig {
  /// Kill a global critical section whose *executed* time inside the
  /// section exceeds its declared duration x grace.
  bool budget_enforce = false;
  double grace = 1.0;
  MissAction on_miss = MissAction::kNone;
  /// Force-release a global semaphore whose holder has kept it for this
  /// many ticks (0 = watchdog off).
  Duration holder_watchdog = 0;

  [[nodiscard]] bool any() const {
    return budget_enforce || on_miss != MissAction::kNone ||
           holder_watchdog > 0;
  }
};

/// Parses "none" or a comma list of policy names: budget-enforce,
/// job-abort, skip-next-release, watchdog. Throws ConfigError on unknown
/// names or job-abort combined with skip-next-release.
[[nodiscard]] ContainmentConfig containmentFromNames(const std::string& csv,
                                                     double grace,
                                                     Duration watchdog_timeout);

/// Plan text grammar (whitespace-free, comma-separated; round-trips
/// through formatPlan and survives single-token repro headers):
///   wcet:<task>:<inst|*>:x<factor>[+<delta>]
///   cs:<task>:<inst|*>:<res|*>:x<factor>[+<delta>]
///   stuck:<task>:<inst|*>:<res|*>
///   jitter:<task>:<inst|*>:+<delta>
///   stall:P<proc>:<start>:<length>
/// <task>/<res> accept a name ("tau1", "S0") or a bare index.
[[nodiscard]] FaultPlan parsePlan(const std::string& text,
                                  const TaskSystem& sys);
[[nodiscard]] std::string formatPlan(const FaultPlan& plan,
                                     const TaskSystem& sys);

}  // namespace mpcp::fault
