#include "fault/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "common/strf.h"
#include "model/sections.h"

namespace mpcp::fault {

namespace {

/// floor(base * factor) with a tiny guard so exact products (factors are
/// quarter-steps, hence exactly representable) never round down.
Duration stretch(Duration base, double factor) {
  return static_cast<Duration>(
      std::floor(static_cast<double>(base) * factor + 1e-9));
}

std::string specLabel(std::size_t i, const FaultSpec& s) {
  return strf("fault spec #", i, " (", toString(s.kind), ")");
}

std::vector<std::string> splitOn(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::int64_t parseIndex(const std::string& field, const std::string& text) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw ConfigError(strf("fault plan: ", field, " expects a number, got '",
                           text, "'"));
  }
}

TaskId parseTask(const std::string& text, const TaskSystem& sys) {
  for (const Task& t : sys.tasks()) {
    if (t.name == text) return t.id;
  }
  return TaskId(static_cast<std::int32_t>(parseIndex("task", text)));
}

ResourceId parseResource(const std::string& text, const TaskSystem& sys) {
  if (text == "*") return ResourceId{};
  for (std::size_t r = 0; r < sys.resources().size(); ++r) {
    if (sys.resources()[r].name == text) {
      return ResourceId(static_cast<std::int32_t>(r));
    }
  }
  return ResourceId(static_cast<std::int32_t>(parseIndex("resource", text)));
}

std::int64_t parseInstance(const std::string& text) {
  if (text == "*") return -1;
  return parseIndex("instance", text);
}

/// "x<factor>[+<delta>]" -> (factor, delta).
void parseStretch(const std::string& text, FaultSpec& spec) {
  if (text.empty() || text[0] != 'x') {
    throw ConfigError(strf("fault plan: expected x<factor>[+<delta>], got '",
                           text, "'"));
  }
  const std::size_t plus = text.find('+');
  const std::string ftext = text.substr(1, plus == std::string::npos
                                               ? std::string::npos
                                               : plus - 1);
  try {
    std::size_t pos = 0;
    spec.factor = std::stod(ftext, &pos);
    if (pos != ftext.size()) throw std::invalid_argument(ftext);
  } catch (const std::exception&) {
    throw ConfigError(strf("fault plan: bad factor '", ftext, "'"));
  }
  if (plus != std::string::npos) {
    spec.delta = parseIndex("delta", text.substr(plus + 1));
  }
}

std::string formatFactor(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", f);
  return buf;
}

std::string instText(std::int64_t inst) {
  return inst < 0 ? "*" : std::to_string(inst);
}

std::string resourceText(ResourceId r, const TaskSystem& sys) {
  return r.valid() ? sys.resources()[static_cast<std::size_t>(r.value())].name
                   : std::string("*");
}

}  // namespace

const char* toString(FaultKind k) {
  switch (k) {
    case FaultKind::kWcetOverrun: return "wcet";
    case FaultKind::kCsOverrun: return "cs";
    case FaultKind::kStuckHolder: return "stuck";
    case FaultKind::kReleaseJitter: return "jitter";
    case FaultKind::kProcStall: return "stall";
  }
  return "?";
}

bool FaultPlan::mirrorable() const { return !hasStalls(); }

bool FaultPlan::hasStalls() const {
  return std::any_of(specs.begin(), specs.end(), [](const FaultSpec& s) {
    return s.kind == FaultKind::kProcStall;
  });
}

void FaultPlan::validate(const TaskSystem& sys) const {
  const auto n_tasks = static_cast<std::int32_t>(sys.tasks().size());
  const auto n_res = static_cast<std::int32_t>(sys.resources().size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const FaultSpec& s = specs[i];
    if (s.kind == FaultKind::kProcStall) {
      if (!s.processor.valid() || s.processor.value() >= sys.processorCount()) {
        throw ConfigError(strf(specLabel(i, s), ": processor ", s.processor,
                               " out of range [0, ", sys.processorCount(),
                               ")"));
      }
      if (s.start < 0) {
        throw ConfigError(strf(specLabel(i, s), ": start must be >= 0, got ",
                               s.start));
      }
      if (s.length <= 0) {
        throw ConfigError(strf(specLabel(i, s), ": length must be > 0, got ",
                               s.length));
      }
      continue;
    }
    if (!s.task.valid() || s.task.value() >= n_tasks) {
      throw ConfigError(strf(specLabel(i, s), ": task ", s.task,
                             " out of range [0, ", n_tasks, ")"));
    }
    if (s.instance < -1) {
      throw ConfigError(strf(specLabel(i, s), ": instance must be >= 0 or -1",
                             " (every instance), got ", s.instance));
    }
    if (s.resource.valid() && s.resource.value() >= n_res) {
      throw ConfigError(strf(specLabel(i, s), ": resource ", s.resource,
                             " out of range [0, ", n_res, ")"));
    }
    switch (s.kind) {
      case FaultKind::kWcetOverrun:
      case FaultKind::kCsOverrun:
        if (s.factor < 1.0) {
          throw ConfigError(strf(specLabel(i, s),
                                 ": factor must be >= 1, got ", s.factor));
        }
        if (s.delta < 0) {
          throw ConfigError(strf(specLabel(i, s),
                                 ": delta must be >= 0, got ", s.delta));
        }
        if (s.factor == 1.0 && s.delta == 0) {
          throw ConfigError(strf(specLabel(i, s),
                                 ": factor 1 with delta 0 injects nothing"));
        }
        break;
      case FaultKind::kReleaseJitter:
        if (s.delta <= 0) {
          throw ConfigError(strf(specLabel(i, s),
                                 ": jitter delta must be > 0, got ", s.delta));
        }
        break;
      case FaultKind::kStuckHolder:
      case FaultKind::kProcStall:
        break;
    }
  }
}

ComputeEffect FaultPlan::computeEffect(TaskId task, std::int64_t instance,
                                       Duration base, ResourceId inner,
                                       bool allow_delta) const {
  ComputeEffect eff{base, 0, false};
  if (base <= 0) return eff;  // zero-length ops never accrue faults
  for (const FaultSpec& s : specs) {
    if (!s.matches(task, instance)) continue;
    Duration d = eff.duration;
    if (s.kind == FaultKind::kWcetOverrun && !inner.valid()) {
      d = stretch(d, s.factor);
      if (allow_delta && s.delta > 0) {
        d += s.delta;
        eff.delta_used = true;
      }
    } else if (s.kind == FaultKind::kCsOverrun && inner.valid() &&
               (!s.resource.valid() || s.resource == inner)) {
      d = stretch(d, s.factor) + s.delta;
    } else {
      continue;
    }
    if (d != eff.duration) {
      eff.kinds |= bitOf(s.kind);
      eff.duration = d;
    }
  }
  return eff;
}

bool FaultPlan::stuckAt(TaskId task, std::int64_t instance,
                        ResourceId r) const {
  return std::any_of(specs.begin(), specs.end(), [&](const FaultSpec& s) {
    return s.kind == FaultKind::kStuckHolder && s.matches(task, instance) &&
           (!s.resource.valid() || s.resource == r);
  });
}

Duration FaultPlan::releaseJitter(TaskId task, std::int64_t instance) const {
  Duration jd = 0;
  for (const FaultSpec& s : specs) {
    if (s.kind == FaultKind::kReleaseJitter && s.matches(task, instance)) {
      jd = std::max(jd, s.delta);
    }
  }
  return jd;
}

bool FaultPlan::stalled(ProcessorId p, Time t) const {
  return std::any_of(specs.begin(), specs.end(), [&](const FaultSpec& s) {
    return s.kind == FaultKind::kProcStall && s.processor == p &&
           s.start <= t && t < s.start + s.length;
  });
}

Time FaultPlan::nextStallBoundary(Time t) const {
  Time next = kTimeInfinity;
  for (const FaultSpec& s : specs) {
    if (s.kind != FaultKind::kProcStall) continue;
    if (s.start > t) next = std::min(next, s.start);
    if (s.start + s.length > t) next = std::min(next, s.start + s.length);
  }
  return next;
}

FaultPlan FaultPlan::random(Rng& rng, const TaskSystem& sys, int count) {
  FaultPlan plan;
  if (sys.tasks().empty()) return plan;
  for (int i = 0; i < count; ++i) {
    const Task& task = sys.tasks()[rng.index(sys.tasks().size())];
    FaultSpec s;
    s.task = task.id;
    s.instance = rng.chance(0.5) ? -1 : rng.uniformInt(0, 3);
    int kind = static_cast<int>(rng.uniformInt(0, 4));
    // CS-targeted kinds need a section to aim at; jitter needs slack
    // inside the period. Fall back to a plain WCET overrun otherwise.
    if ((kind == 1 || kind == 2) && task.sections.empty()) kind = 0;
    if (kind == 3 && task.period < 2) kind = 0;
    switch (kind) {
      case 0:
        s.kind = FaultKind::kWcetOverrun;
        s.factor = 1.0 + static_cast<double>(rng.uniformInt(1, 12)) / 4.0;
        if (rng.chance(0.3)) s.delta = rng.uniformInt(1, 50);
        break;
      case 1:
        s.kind = FaultKind::kCsOverrun;
        s.resource = task.sections[rng.index(task.sections.size())].resource;
        s.factor = 1.0 + static_cast<double>(rng.uniformInt(1, 12)) / 4.0;
        break;
      case 2:
        s.kind = FaultKind::kStuckHolder;
        s.resource = task.sections[rng.index(task.sections.size())].resource;
        break;
      case 3:
        s.kind = FaultKind::kReleaseJitter;
        s.delta = rng.uniformInt(1, std::min<Duration>(200, task.period - 1));
        break;
      default:
        s.kind = FaultKind::kProcStall;
        s.processor =
            ProcessorId(static_cast<std::int32_t>(rng.index(
                static_cast<std::size_t>(sys.processorCount()))));
        s.start = rng.uniformInt(0, 2000);
        s.length = rng.uniformInt(10, 400);
        break;
    }
    plan.specs.push_back(s);
  }
  return plan;
}

ContainmentConfig containmentFromNames(const std::string& csv, double grace,
                                       Duration watchdog_timeout) {
  ContainmentConfig cc;
  cc.grace = grace;
  if (grace <= 0) {
    throw ConfigError(strf("containment: grace must be > 0, got ", grace));
  }
  for (const std::string& name : splitOn(csv, ',')) {
    if (name.empty() || name == "none") continue;
    if (name == "budget-enforce") {
      cc.budget_enforce = true;
    } else if (name == "job-abort" || name == "skip-next-release") {
      const MissAction action = name == "job-abort"
                                    ? MissAction::kAbortJob
                                    : MissAction::kSkipNextRelease;
      if (cc.on_miss != MissAction::kNone && cc.on_miss != action) {
        throw ConfigError(
            "containment: job-abort and skip-next-release are exclusive");
      }
      cc.on_miss = action;
    } else if (name == "watchdog") {
      if (watchdog_timeout <= 0) {
        throw ConfigError(strf("containment: watchdog needs a timeout > 0, ",
                               "got ", watchdog_timeout));
      }
      cc.holder_watchdog = watchdog_timeout;
    } else {
      throw ConfigError(strf("containment: unknown policy '", name,
                             "' (want none, budget-enforce, job-abort, ",
                             "skip-next-release, watchdog)"));
    }
  }
  return cc;
}

FaultPlan parsePlan(const std::string& text, const TaskSystem& sys) {
  FaultPlan plan;
  if (text.empty()) return plan;
  for (const std::string& item : splitOn(text, ',')) {
    if (item.empty()) continue;
    const std::vector<std::string> f = splitOn(item, ':');
    FaultSpec s;
    const auto need = [&](std::size_t n) {
      if (f.size() != n) {
        throw ConfigError(strf("fault plan: '", item, "' has ", f.size() - 1,
                               " fields, want ", n - 1));
      }
    };
    if (f[0] == "wcet") {
      need(4);
      s.kind = FaultKind::kWcetOverrun;
      s.task = parseTask(f[1], sys);
      s.instance = parseInstance(f[2]);
      parseStretch(f[3], s);
    } else if (f[0] == "cs") {
      need(5);
      s.kind = FaultKind::kCsOverrun;
      s.task = parseTask(f[1], sys);
      s.instance = parseInstance(f[2]);
      s.resource = parseResource(f[3], sys);
      parseStretch(f[4], s);
    } else if (f[0] == "stuck") {
      need(4);
      s.kind = FaultKind::kStuckHolder;
      s.task = parseTask(f[1], sys);
      s.instance = parseInstance(f[2]);
      s.resource = parseResource(f[3], sys);
    } else if (f[0] == "jitter") {
      need(4);
      s.kind = FaultKind::kReleaseJitter;
      s.task = parseTask(f[1], sys);
      s.instance = parseInstance(f[2]);
      if (f[3].empty() || f[3][0] != '+') {
        throw ConfigError(strf("fault plan: jitter expects +<delta>, got '",
                               f[3], "'"));
      }
      s.delta = parseIndex("delta", f[3].substr(1));
    } else if (f[0] == "stall") {
      need(4);
      s.kind = FaultKind::kProcStall;
      std::string p = f[1];
      if (!p.empty() && p[0] == 'P') p = p.substr(1);
      s.processor =
          ProcessorId(static_cast<std::int32_t>(parseIndex("processor", p)));
      s.start = parseIndex("start", f[2]);
      s.length = parseIndex("length", f[3]);
    } else {
      throw ConfigError(strf("fault plan: unknown fault kind '", f[0],
                             "' (want wcet, cs, stuck, jitter, stall)"));
    }
    plan.specs.push_back(s);
  }
  plan.validate(sys);
  return plan;
}

std::string formatPlan(const FaultPlan& plan, const TaskSystem& sys) {
  std::ostringstream os;
  for (std::size_t i = 0; i < plan.specs.size(); ++i) {
    const FaultSpec& s = plan.specs[i];
    if (i > 0) os << ',';
    switch (s.kind) {
      case FaultKind::kWcetOverrun:
        os << "wcet:" << sys.task(s.task).name << ':' << instText(s.instance)
           << ":x" << formatFactor(s.factor);
        if (s.delta > 0) os << '+' << s.delta;
        break;
      case FaultKind::kCsOverrun:
        os << "cs:" << sys.task(s.task).name << ':' << instText(s.instance)
           << ':' << resourceText(s.resource, sys) << ":x"
           << formatFactor(s.factor);
        if (s.delta > 0) os << '+' << s.delta;
        break;
      case FaultKind::kStuckHolder:
        os << "stuck:" << sys.task(s.task).name << ':' << instText(s.instance)
           << ':' << resourceText(s.resource, sys);
        break;
      case FaultKind::kReleaseJitter:
        os << "jitter:" << sys.task(s.task).name << ':'
           << instText(s.instance) << ":+" << s.delta;
        break;
      case FaultKind::kProcStall:
        os << "stall:P" << s.processor.value() << ':' << s.start << ':'
           << s.length;
        break;
    }
  }
  return os.str();
}

}  // namespace mpcp::fault
