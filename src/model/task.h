// Task model.
//
// A periodic task tau_i (Section 3.1): a job released every `period`
// ticks starting at `phase`, executing `body`, due `relative_deadline`
// ticks after release (the paper's implicit deadline = period is the
// default). Tasks are statically bound to a processor (Section 3.2) and
// carry a fixed priority (rate-monotonic by default).
#pragma once

#include <string>
#include <vector>

#include "common/priority.h"
#include "common/types.h"
#include "model/body.h"
#include "model/sections.h"

namespace mpcp {

/// User-facing description of a task, consumed by TaskSystemBuilder.
struct TaskSpec {
  std::string name;                 ///< display name; defaults to "tau<k>"
  Duration period = 0;              ///< T_i, must be > 0
  Time phase = 0;                   ///< first release time, >= 0
  Duration relative_deadline = 0;   ///< D_i; 0 means D_i = T_i
  int processor = -1;               ///< static binding, in [0, processorCount)
  Body body;                        ///< op sequence; C_i = body.totalCompute()
  /// Explicit priority override. Leave unset to get rate-monotonic
  /// assignment; if any task sets it, all tasks must.
  std::optional<Priority> priority;
};

/// A validated task inside a TaskSystem. Immutable.
struct Task {
  TaskId id;
  std::string name;
  Duration period = 0;
  Time phase = 0;
  Duration relative_deadline = 0;
  ProcessorId processor;
  Priority priority;  ///< assigned priority P_i (normal-execution band)
  Body body;
  std::vector<CriticalSection> sections;  ///< extracted from body
  Duration wcet = 0;                      ///< C_i

  [[nodiscard]] double utilization() const {
    return static_cast<double>(wcet) / static_cast<double>(period);
  }
};

}  // namespace mpcp
