// Critical-section extraction.
//
// The blocking analysis of Section 5.1 works with per-task lists of
// critical sections: which semaphore, how long (including nested inner
// sections — an outer section cannot be released before its inner ones),
// and the nesting structure. This pass derives that list from a Body and
// validates lock/unlock discipline:
//   * Unlock must match the most recent unreleased Lock (proper nesting).
//   * A job never relocks a semaphore it already holds (paper Section 3.1
//     assumption — self-deadlock excluded).
//   * Every Lock is released by job end (Section 3.1: "locks ... will be
//     released before or at the end of a job").
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "model/body.h"

namespace mpcp {

/// One critical section of a task body.
struct CriticalSection {
  ResourceId resource;
  std::size_t lock_index;    ///< index of the LockOp in Body::ops()
  std::size_t unlock_index;  ///< index of the matching UnlockOp
  Duration duration = 0;     ///< compute time inside, nested sections included
  int depth = 0;             ///< 0 = outermost
  int parent = -1;           ///< index into the section list, -1 if outermost

  friend bool operator==(const CriticalSection&, const CriticalSection&) = default;
};

/// Extracts all critical sections of `body` in lock order and validates
/// the locking discipline. Throws ConfigError on malformed bodies.
[[nodiscard]] std::vector<CriticalSection> extractSections(const Body& body);

}  // namespace mpcp
