#include "model/task_system.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/check.h"
#include "common/math_util.h"
#include "common/strf.h"

namespace mpcp {

const Task& TaskSystem::task(TaskId id) const {
  MPCP_CHECK(id.valid() && static_cast<std::size_t>(id.value()) < tasks_.size(),
             "unknown task id " << id);
  return tasks_[static_cast<std::size_t>(id.value())];
}

const ResourceInfo& TaskSystem::resource(ResourceId id) const {
  MPCP_CHECK(
      id.valid() && static_cast<std::size_t>(id.value()) < resources_.size(),
      "unknown resource id " << id);
  return resources_[static_cast<std::size_t>(id.value())];
}

const std::vector<TaskId>& TaskSystem::tasksOn(ProcessorId p) const {
  MPCP_CHECK(p.valid() && p.value() < processor_count_,
             "unknown processor " << p);
  return tasks_on_[static_cast<std::size_t>(p.value())];
}

bool TaskSystem::hasGlobalResources() const {
  return std::any_of(resources_.begin(), resources_.end(),
                     [](const ResourceInfo& r) {
                       return r.scope == ResourceScope::kGlobal;
                     });
}

double TaskSystem::utilizationOn(ProcessorId p) const {
  double u = 0;
  for (TaskId t : tasksOn(p)) u += task(t).utilization();
  return u;
}

TaskSystemBuilder::TaskSystemBuilder(int processor_count,
                                     TaskSystemOptions options)
    : processor_count_(processor_count), options_(options) {
  if (processor_count < 1) {
    throw ConfigError(strf("processor count must be >= 1, got ",
                           processor_count));
  }
}

ResourceId TaskSystemBuilder::addResource(std::string name) {
  const ResourceId id(static_cast<std::int32_t>(resource_names_.size()));
  if (name.empty()) name = strf("S", id.value() + 1);
  resource_names_.push_back(std::move(name));
  sync_overrides_.emplace_back();
  return id;
}

TaskId TaskSystemBuilder::addTask(TaskSpec spec) {
  const TaskId id(static_cast<std::int32_t>(specs_.size()));
  if (spec.name.empty()) spec.name = strf("tau", id.value() + 1);
  specs_.push_back(std::move(spec));
  return id;
}

void TaskSystemBuilder::assignSyncProcessor(ResourceId r, ProcessorId p) {
  if (!r.valid() ||
      static_cast<std::size_t>(r.value()) >= sync_overrides_.size()) {
    throw ConfigError(strf("assignSyncProcessor: unknown resource ", r));
  }
  if (!p.valid() || p.value() >= processor_count_) {
    throw ConfigError(strf("assignSyncProcessor: unknown processor ", p));
  }
  sync_overrides_[static_cast<std::size_t>(r.value())] = p;
}

TaskSystem TaskSystemBuilder::build() && {
  TaskSystem sys;
  sys.processor_count_ = processor_count_;
  sys.options_ = options_;

  if (specs_.empty()) throw ConfigError("task system has no tasks");

  // ---- Tasks: validate specs, extract critical sections. ----
  const std::size_t n = specs_.size();
  bool any_explicit = false, all_explicit = true;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec& spec = specs_[i];
    const TaskId id(static_cast<std::int32_t>(i));
    if (spec.period <= 0) {
      throw ConfigError(strf(spec.name, ": period must be > 0, got ",
                             spec.period));
    }
    if (spec.phase < 0) {
      throw ConfigError(strf(spec.name, ": phase must be >= 0"));
    }
    if (spec.relative_deadline == 0) spec.relative_deadline = spec.period;
    if (spec.relative_deadline < 0 || spec.relative_deadline > spec.period) {
      throw ConfigError(strf(spec.name,
                             ": deadline must be in (0, period], got ",
                             spec.relative_deadline));
    }
    if (spec.processor < 0 || spec.processor >= processor_count_) {
      throw ConfigError(strf(spec.name, ": processor ", spec.processor,
                             " out of range [0, ", processor_count_, ")"));
    }
    if (spec.body.totalCompute() <= 0) {
      throw ConfigError(strf(spec.name, ": body has no compute time"));
    }
    any_explicit |= spec.priority.has_value();
    all_explicit &= spec.priority.has_value();

    Task task;
    task.id = id;
    task.name = spec.name;
    task.period = spec.period;
    task.phase = spec.phase;
    task.relative_deadline = spec.relative_deadline;
    task.processor = ProcessorId(spec.processor);
    task.body = spec.body;
    task.sections = extractSections(spec.body);  // throws on bad nesting
    task.wcet = spec.body.totalCompute();
    for (const CriticalSection& cs : task.sections) {
      if (!cs.resource.valid() ||
          static_cast<std::size_t>(cs.resource.value()) >=
              resource_names_.size()) {
        throw ConfigError(strf(spec.name, ": references undeclared resource ",
                               cs.resource));
      }
      // Derived today (section content is part of the body), but contain-
      // ment budgets trust cs.duration, so reject drift loudly by name.
      if (cs.duration < 0 || cs.duration > task.wcet) {
        throw ConfigError(strf(
            spec.name, ": critical section on ",
            resource_names_[static_cast<std::size_t>(cs.resource.value())],
            " has duration ", cs.duration, " outside [0, wcet=", task.wcet,
            "]"));
      }
    }
    sys.tasks_.push_back(std::move(task));
  }
  if (any_explicit && !all_explicit) {
    throw ConfigError(
        "either all tasks or no tasks may set an explicit priority");
  }

  // ---- Priorities: explicit, or rate-monotonic (Section 3.1). ----
  if (all_explicit) {
    std::set<std::int32_t> seen;
    for (std::size_t i = 0; i < n; ++i) {
      const Priority p = *specs_[i].priority;
      if (p.urgency() <= 0) {
        throw ConfigError(strf(specs_[i].name,
                               ": explicit priority urgency must be > 0"));
      }
      if (!seen.insert(p.urgency()).second) {
        throw ConfigError(strf("duplicate explicit priority ", p,
                               "; the analysis requires a strict order"));
      }
      sys.tasks_[i].priority = p;
    }
  } else {
    // Shorter period => higher priority; ties broken by insertion order
    // (earlier task wins, matching the paper's J_1 > J_2 > ... listing).
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return sys.tasks_[a].period < sys.tasks_[b].period;
                     });
    // order[0] = shortest period = most urgent = urgency n.
    for (std::size_t rank = 0; rank < n; ++rank) {
      sys.tasks_[order[rank]].priority =
          Priority(static_cast<std::int32_t>(n - rank));
    }
  }

  Priority max_prio = kPriorityFloor;
  for (const Task& t : sys.tasks_) max_prio = std::max(max_prio, t.priority);
  sys.max_task_priority_ = max_prio;
  // P_G > P_H strictly (Section 4.4's base priority ceiling).
  sys.global_base_ = Priority(max_prio.urgency() + 1);

  // ---- Resources: users, scope, homes. ----
  sys.resources_.resize(resource_names_.size());
  for (std::size_t r = 0; r < resource_names_.size(); ++r) {
    ResourceInfo& info = sys.resources_[r];
    info.id = ResourceId(static_cast<std::int32_t>(r));
    info.name = resource_names_[r];
  }
  for (const Task& t : sys.tasks_) {
    std::set<std::int32_t> counted;  // one user entry per (task, resource)
    for (const CriticalSection& cs : t.sections) {
      if (counted.insert(cs.resource.value()).second) {
        sys.resources_[static_cast<std::size_t>(cs.resource.value())]
            .users.push_back(t.id);
      }
    }
  }
  for (ResourceInfo& info : sys.resources_) {
    std::set<std::int32_t> procs;
    for (TaskId t : info.users) procs.insert(sys.task(t).processor.value());
    if (procs.size() <= 1) {
      info.scope = ResourceScope::kLocal;
      if (!procs.empty()) info.home = ProcessorId(*procs.begin());
    } else {
      info.scope = ResourceScope::kGlobal;
    }
    const auto& override_p =
        sync_overrides_[static_cast<std::size_t>(info.id.value())];
    if (override_p.has_value()) {
      info.sync_processor = *override_p;
    } else if (!procs.empty()) {
      info.sync_processor = ProcessorId(*procs.begin());
    }
  }

  // ---- Nesting policy (Section 4.2 base assumption). ----
  if (!options_.allow_nested_global) {
    for (const Task& t : sys.tasks_) {
      for (const CriticalSection& cs : t.sections) {
        const bool cs_global = sys.isGlobal(cs.resource);
        if (cs.parent >= 0) {
          const CriticalSection& outer =
              t.sections[static_cast<std::size_t>(cs.parent)];
          const bool outer_global = sys.isGlobal(outer.resource);
          if (cs_global || outer_global) {
            throw ConfigError(strf(
                t.name, ": global critical sections may not nest (",
                outer.resource, " encloses ", cs.resource,
                "); see TaskSystemOptions::allow_nested_global"));
          }
        }
      }
    }
  }

  // ---- Per-processor task lists, priority-descending. ----
  sys.tasks_on_.assign(static_cast<std::size_t>(processor_count_), {});
  for (const Task& t : sys.tasks_) {
    sys.tasks_on_[static_cast<std::size_t>(t.processor.value())].push_back(
        t.id);
  }
  for (auto& list : sys.tasks_on_) {
    std::sort(list.begin(), list.end(), [&](TaskId a, TaskId b) {
      return sys.task(a).priority > sys.task(b).priority;
    });
  }

  // ---- Hyperperiod. ----
  Time hp = 1;
  for (const Task& t : sys.tasks_) hp = lcmSaturating(hp, t.period);
  sys.hyperperiod_ = hp;

  return sys;
}

}  // namespace mpcp
