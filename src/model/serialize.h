// Plain-text task-system format: load and save complete workloads so
// experiments are reproducible from files and the CLI can drive the
// library without writing C++.
//
// Format (line-oriented; '#' starts a comment; blank lines ignored):
//
//   processors 3
//   options allow_nested_global      # optional flags
//   resource GBUF                    # declaration order = ResourceId
//   resource LLOG
//   sync GBUF 2                      # optional DPCP sync-processor pin
//   task control period=100 processor=0 [phase=0] [deadline=100] [priority=5]
//     compute 10
//     lock GBUF
//     compute 5
//     unlock GBUF
//     suspend 3
//     section LLOG 4                 # sugar: lock/compute/unlock
//     compute 7
//   end
//
// Durations are ticks. Unknown directives are errors (fail loudly, not
// silently). parse/serialize round-trip exactly (section sugar expands),
// with one caveat: explicit priorities are parsed but not re-emitted —
// serialized systems rely on rate-monotonic re-derivation, which matches
// whenever the original priorities were RM (the default).
#pragma once

#include <iosfwd>
#include <string>

#include "model/task_system.h"

namespace mpcp {

/// Parses the text format. Throws ConfigError with a line number on any
/// syntax or semantic problem.
[[nodiscard]] TaskSystem parseTaskSystem(std::istream& in);
[[nodiscard]] TaskSystem parseTaskSystemFromString(const std::string& text);

/// Writes `system` in the text format (round-trips through parse).
void serializeTaskSystem(std::ostream& out, const TaskSystem& system);
[[nodiscard]] std::string serializeTaskSystemToString(
    const TaskSystem& system);

}  // namespace mpcp
