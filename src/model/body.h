// Job bodies.
//
// The paper describes a job as straight-line code interleaving normal
// execution with critical sections:
//   J_i = { ... P(S_1) ... V(S_1) ... P(S_2) ... V(S_2) ... }
// We model a body as a sequence of ops: Compute(d), Lock(S), Unlock(S).
// Critical-section *content* is the compute time between a Lock and its
// matching Unlock (nested sections included in the outer duration).
#pragma once

#include <cstddef>
#include <variant>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace mpcp {

/// Execute for `duration` ticks (preemptible).
struct ComputeOp {
  Duration duration;
  friend constexpr bool operator==(const ComputeOp&, const ComputeOp&) = default;
};

/// P(S): acquire the semaphore, blocking/suspending per protocol.
struct LockOp {
  ResourceId resource;
  friend constexpr bool operator==(const LockOp&, const LockOp&) = default;
};

/// V(S): release the semaphore.
struct UnlockOp {
  ResourceId resource;
  friend constexpr bool operator==(const UnlockOp&, const UnlockOp&) = default;
};

/// Voluntary self-suspension for `duration` ticks (I/O, a timed delay).
/// The paper's Theorem 1 charges one extra local blocking section per
/// suspension; the analyses here count these ops. Suspension inside a
/// critical section is rejected (sections are short by assumption and a
/// suspended holder would wreck every blocking bound).
struct SuspendOp {
  Duration duration;
  friend constexpr bool operator==(const SuspendOp&, const SuspendOp&) = default;
};

using Op = std::variant<ComputeOp, LockOp, UnlockOp, SuspendOp>;

/// Straight-line job body. Build fluently:
///   Body{}.compute(2).lock(s).compute(3).unlock(s).compute(1)
/// or with the `section` shorthand for a flat critical section.
class Body {
 public:
  Body() = default;

  Body& compute(Duration d) & {
    MPCP_CHECK(d > 0, "compute duration must be positive, got " << d);
    // Merge adjacent computes so generated bodies stay canonical.
    if (!ops_.empty()) {
      if (auto* prev = std::get_if<ComputeOp>(&ops_.back())) {
        prev->duration += d;
        return *this;
      }
    }
    ops_.emplace_back(ComputeOp{d});
    return *this;
  }
  Body&& compute(Duration d) && { return std::move(compute(d)); }

  Body& lock(ResourceId r) & {
    MPCP_CHECK(r.valid(), "lock() with invalid resource id");
    ops_.emplace_back(LockOp{r});
    return *this;
  }
  Body&& lock(ResourceId r) && { return std::move(lock(r)); }

  Body& unlock(ResourceId r) & {
    MPCP_CHECK(r.valid(), "unlock() with invalid resource id");
    ops_.emplace_back(UnlockOp{r});
    return *this;
  }
  Body&& unlock(ResourceId r) && { return std::move(unlock(r)); }

  /// Self-suspend for `d` ticks. Not allowed while holding a semaphore.
  Body& suspend(Duration d) & {
    MPCP_CHECK(d > 0, "suspend duration must be positive, got " << d);
    ops_.emplace_back(SuspendOp{d});
    return *this;
  }
  Body&& suspend(Duration d) && { return std::move(suspend(d)); }

  /// lock(r); compute(d); unlock(r) — a flat critical section.
  Body& section(ResourceId r, Duration d) & {
    return lock(r).compute(d).unlock(r);
  }
  Body&& section(ResourceId r, Duration d) && {
    return std::move(section(r, d));
  }

  [[nodiscard]] const std::vector<Op>& ops() const { return ops_; }
  [[nodiscard]] bool empty() const { return ops_.empty(); }

  /// Total compute demand (the task's C_i), independent of blocking.
  [[nodiscard]] Duration totalCompute() const {
    Duration sum = 0;
    for (const Op& op : ops_) {
      if (const auto* c = std::get_if<ComputeOp>(&op)) sum += c->duration;
    }
    return sum;
  }

  friend bool operator==(const Body&, const Body&) = default;

 private:
  std::vector<Op> ops_;
};

}  // namespace mpcp
