#include "model/serialize.h"

#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/strf.h"

namespace mpcp {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw ConfigError(strf("task-system parse error at line ", line, ": ",
                         message));
}

/// Splits on whitespace; strips a trailing '#' comment first.
std::vector<std::string> tokenize(std::string line) {
  const auto hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  std::istringstream is(line);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

std::int64_t parseInt(const std::string& s, int line, const char* what) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(s, &pos);
    if (pos != s.size()) fail(line, strf("bad ", what, ": '", s, "'"));
    return v;
  } catch (const std::logic_error&) {
    fail(line, strf("bad ", what, ": '", s, "'"));
  }
}

/// "key=value" -> {key, value}; errors otherwise.
std::pair<std::string, std::string> splitKeyValue(const std::string& tok,
                                                  int line) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) {
    fail(line, strf("expected key=value, got '", tok, "'"));
  }
  return {tok.substr(0, eq), tok.substr(eq + 1)};
}

}  // namespace

TaskSystem parseTaskSystem(std::istream& in) {
  std::optional<int> processors;
  TaskSystemOptions options;
  std::map<std::string, ResourceId> resources;
  std::vector<std::string> resource_order;
  std::vector<std::pair<std::string, int>> sync_pins;  // name, processor

  struct PendingTask {
    TaskSpec spec;
    int decl_line;
  };
  std::vector<PendingTask> tasks;
  PendingTask* open_task = nullptr;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto toks = tokenize(raw);
    if (toks.empty()) continue;
    const std::string& head = toks[0];

    if (open_task != nullptr) {
      // Inside a task body.
      if (head == "end") {
        open_task = nullptr;
        continue;
      }
      Body& body = open_task->spec.body;
      const auto need = [&](std::size_t n) {
        if (toks.size() != n) {
          fail(line_no, strf("'", head, "' takes ", n - 1, " argument(s)"));
        }
      };
      const auto resource_of = [&](const std::string& name) {
        const auto it = resources.find(name);
        if (it == resources.end()) {
          fail(line_no, strf("unknown resource '", name, "'"));
        }
        return it->second;
      };
      try {
        if (head == "compute") {
          need(2);
          body.compute(parseInt(toks[1], line_no, "duration"));
        } else if (head == "suspend") {
          need(2);
          body.suspend(parseInt(toks[1], line_no, "duration"));
        } else if (head == "lock") {
          need(2);
          body.lock(resource_of(toks[1]));
        } else if (head == "unlock") {
          need(2);
          body.unlock(resource_of(toks[1]));
        } else if (head == "section") {
          need(3);
          body.section(resource_of(toks[1]),
                       parseInt(toks[2], line_no, "duration"));
        } else {
          fail(line_no, strf("unknown body op '", head, "'"));
        }
      } catch (const InvariantError& e) {
        fail(line_no, e.what());  // e.g. non-positive durations
      }
      continue;
    }

    if (head == "processors") {
      if (toks.size() != 2) fail(line_no, "'processors' takes one count");
      processors = static_cast<int>(parseInt(toks[1], line_no, "count"));
    } else if (head == "options") {
      for (std::size_t i = 1; i < toks.size(); ++i) {
        if (toks[i] == "allow_nested_global") {
          options.allow_nested_global = true;
        } else {
          fail(line_no, strf("unknown option '", toks[i], "'"));
        }
      }
    } else if (head == "resource") {
      if (toks.size() != 2) fail(line_no, "'resource' takes one name");
      if (resources.count(toks[1]) != 0) {
        fail(line_no, strf("duplicate resource '", toks[1], "'"));
      }
      resources.emplace(toks[1],
                        ResourceId(static_cast<std::int32_t>(
                            resource_order.size())));
      resource_order.push_back(toks[1]);
    } else if (head == "sync") {
      if (toks.size() != 3) fail(line_no, "'sync' takes: name processor");
      sync_pins.emplace_back(
          toks[1], static_cast<int>(parseInt(toks[2], line_no, "processor")));
    } else if (head == "task") {
      if (toks.size() < 2) fail(line_no, "'task' needs a name");
      PendingTask pt;
      pt.decl_line = line_no;
      pt.spec.name = toks[1];
      bool have_period = false, have_processor = false;
      for (std::size_t i = 2; i < toks.size(); ++i) {
        const auto [key, value] = splitKeyValue(toks[i], line_no);
        if (key == "period") {
          pt.spec.period = parseInt(value, line_no, "period");
          have_period = true;
        } else if (key == "phase") {
          pt.spec.phase = parseInt(value, line_no, "phase");
        } else if (key == "deadline") {
          pt.spec.relative_deadline = parseInt(value, line_no, "deadline");
        } else if (key == "processor") {
          pt.spec.processor =
              static_cast<int>(parseInt(value, line_no, "processor"));
          have_processor = true;
        } else if (key == "priority") {
          pt.spec.priority = Priority(static_cast<std::int32_t>(
              parseInt(value, line_no, "priority")));
        } else {
          fail(line_no, strf("unknown task attribute '", key, "'"));
        }
      }
      if (!have_period) fail(line_no, "task needs period=<ticks>");
      if (!have_processor) fail(line_no, "task needs processor=<index>");
      tasks.push_back(std::move(pt));
      open_task = &tasks.back();
    } else {
      fail(line_no, strf("unknown directive '", head, "'"));
    }
  }
  if (open_task != nullptr) {
    fail(line_no, strf("task '", open_task->spec.name,
                       "' not closed with 'end'"));
  }
  if (!processors.has_value()) {
    fail(line_no, "missing 'processors' directive");
  }

  TaskSystemBuilder builder(*processors, options);
  for (const std::string& name : resource_order) {
    resources[name] = builder.addResource(name);
  }
  for (const auto& [name, proc] : sync_pins) {
    const auto it = resources.find(name);
    if (it == resources.end()) {
      throw ConfigError(strf("sync pin references unknown resource '", name,
                             "'"));
    }
    builder.assignSyncProcessor(it->second, ProcessorId(proc));
  }
  for (PendingTask& pt : tasks) {
    builder.addTask(std::move(pt.spec));
  }
  return std::move(builder).build();
}

TaskSystem parseTaskSystemFromString(const std::string& text) {
  std::istringstream is(text);
  return parseTaskSystem(is);
}

void serializeTaskSystem(std::ostream& out, const TaskSystem& system) {
  out << "# mpcp task system\n";
  out << "processors " << system.processorCount() << "\n";
  if (system.options().allow_nested_global) {
    out << "options allow_nested_global\n";
  }
  for (const ResourceInfo& r : system.resources()) {
    out << "resource " << r.name << "\n";
  }
  for (const ResourceInfo& r : system.resources()) {
    if (r.sync_processor.has_value()) {
      out << "sync " << r.name << " " << r.sync_processor->value() << "\n";
    }
  }
  for (const Task& t : system.tasks()) {
    out << "task " << t.name << " period=" << t.period
        << " processor=" << t.processor.value();
    if (t.phase != 0) out << " phase=" << t.phase;
    if (t.relative_deadline != t.period) {
      out << " deadline=" << t.relative_deadline;
    }
    out << "\n";
    for (const Op& op : t.body.ops()) {
      if (const auto* c = std::get_if<ComputeOp>(&op)) {
        out << "  compute " << c->duration << "\n";
      } else if (const auto* susp = std::get_if<SuspendOp>(&op)) {
        out << "  suspend " << susp->duration << "\n";
      } else if (const auto* l = std::get_if<LockOp>(&op)) {
        out << "  lock " << system.resource(l->resource).name << "\n";
      } else if (const auto* u = std::get_if<UnlockOp>(&op)) {
        out << "  unlock " << system.resource(u->resource).name << "\n";
      }
    }
    out << "end\n";
  }
}

std::string serializeTaskSystemToString(const TaskSystem& system) {
  std::ostringstream os;
  serializeTaskSystem(os, system);
  return os.str();
}

}  // namespace mpcp
