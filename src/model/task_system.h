// TaskSystem: the validated, immutable description of a multiprocessor
// real-time workload — tasks, their static processor bindings, and the
// shared semaphores — plus the derived facts every protocol and analysis
// needs (resource scopes, P_H, P_G, hyperperiod).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/priority.h"
#include "common/types.h"
#include "model/resource.h"
#include "model/task.h"

namespace mpcp {

/// Build-time switches.
struct TaskSystemOptions {
  /// The paper's base assumption (Section 4.2) forbids global critical
  /// sections from nesting or being nested. Set true only for the nesting
  /// experiments (DPCP tolerates same-processor nesting; Section 5.1
  /// discusses the cost under MPCP).
  bool allow_nested_global = false;
};

class TaskSystemBuilder;

/// Immutable workload description. Construct via TaskSystemBuilder.
class TaskSystem {
 public:
  /// Empty system; assign a built one over it. All accessors on an empty
  /// system either return empty ranges or throw on out-of-range ids.
  TaskSystem() = default;

  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }
  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] const std::vector<ResourceInfo>& resources() const {
    return resources_;
  }
  [[nodiscard]] const ResourceInfo& resource(ResourceId id) const;

  [[nodiscard]] int processorCount() const { return processor_count_; }

  /// Tasks bound to `p`, in descending priority order.
  [[nodiscard]] const std::vector<TaskId>& tasksOn(ProcessorId p) const;

  /// P_H: the highest assigned task priority in the entire system.
  [[nodiscard]] Priority maxTaskPriority() const { return max_task_priority_; }

  /// P_G: base of the global-ceiling band, strictly above P_H
  /// (Section 4.4). Global ceilings and gcs priorities are
  /// globalBase() + <task urgency>.
  [[nodiscard]] Priority globalBase() const { return global_base_; }

  [[nodiscard]] bool isGlobal(ResourceId r) const {
    return resource(r).scope == ResourceScope::kGlobal;
  }

  /// LCM of all periods (kTimeInfinity if it overflows). The simulator's
  /// default horizon is max-phase + 2 * hyperperiod, capped.
  [[nodiscard]] Time hyperperiod() const { return hyperperiod_; }

  [[nodiscard]] const TaskSystemOptions& options() const { return options_; }

  /// True if any resource is global. If false the problem decomposes into
  /// independent uniprocessor problems (Section 4.2).
  [[nodiscard]] bool hasGlobalResources() const;

  /// Total utilization of tasks bound to `p`.
  [[nodiscard]] double utilizationOn(ProcessorId p) const;

 private:
  friend class TaskSystemBuilder;

  std::vector<Task> tasks_;
  std::vector<ResourceInfo> resources_;
  std::vector<std::vector<TaskId>> tasks_on_;  // per processor, prio desc
  int processor_count_ = 0;
  Priority max_task_priority_;
  Priority global_base_;
  Time hyperperiod_ = 0;
  TaskSystemOptions options_;
};

/// Collects task/resource specs, validates, derives, and produces a
/// TaskSystem. Single-shot: build() consumes the builder.
class TaskSystemBuilder {
 public:
  explicit TaskSystemBuilder(int processor_count,
                             TaskSystemOptions options = {});

  /// Declares a semaphore. Scope is derived at build() from its users.
  ResourceId addResource(std::string name = "");

  /// Adds a task; returns its id (stable: insertion order).
  TaskId addTask(TaskSpec spec);

  /// DPCP: pins a (global) resource's critical sections to `p`.
  void assignSyncProcessor(ResourceId r, ProcessorId p);

  /// Validates everything, assigns rate-monotonic priorities if no task
  /// set an explicit one, and freezes the system.
  /// Throws ConfigError on malformed input.
  [[nodiscard]] TaskSystem build() &&;

 private:
  int processor_count_;
  TaskSystemOptions options_;
  std::vector<TaskSpec> specs_;
  std::vector<std::string> resource_names_;
  std::vector<std::optional<ProcessorId>> sync_overrides_;
};

}  // namespace mpcp
