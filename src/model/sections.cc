#include "model/sections.h"

#include <algorithm>

#include "common/check.h"
#include "common/strf.h"

namespace mpcp {

std::vector<CriticalSection> extractSections(const Body& body) {
  std::vector<CriticalSection> sections;
  std::vector<int> open;  // indices into `sections` of currently-held locks

  const auto held = [&](ResourceId r) {
    return std::any_of(open.begin(), open.end(), [&](int idx) {
      return sections[static_cast<std::size_t>(idx)].resource == r;
    });
  };

  const std::vector<Op>& ops = body.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (const auto* c = std::get_if<ComputeOp>(&ops[i])) {
      for (int idx : open) {
        sections[static_cast<std::size_t>(idx)].duration += c->duration;
      }
    } else if (const auto* l = std::get_if<LockOp>(&ops[i])) {
      if (held(l->resource)) {
        throw ConfigError(strf("body relocks held semaphore ", l->resource,
                               " at op ", i));
      }
      CriticalSection cs;
      cs.resource = l->resource;
      cs.lock_index = i;
      cs.unlock_index = i;  // fixed up at the matching unlock
      cs.depth = static_cast<int>(open.size());
      cs.parent = open.empty() ? -1 : open.back();
      sections.push_back(cs);
      open.push_back(static_cast<int>(sections.size()) - 1);
    } else if (std::get_if<SuspendOp>(&ops[i]) != nullptr) {
      if (!open.empty()) {
        throw ConfigError(strf(
            "self-suspension inside a critical section (holding ",
            sections[static_cast<std::size_t>(open.back())].resource,
            ") at op ", i));
      }
    } else if (const auto* u = std::get_if<UnlockOp>(&ops[i])) {
      if (open.empty()) {
        throw ConfigError(strf("unlock of ", u->resource,
                               " at op ", i, " with no lock held"));
      }
      CriticalSection& top = sections[static_cast<std::size_t>(open.back())];
      if (top.resource != u->resource) {
        throw ConfigError(strf("improper nesting: unlock of ", u->resource,
                               " at op ", i, " but innermost held lock is ",
                               top.resource));
      }
      top.unlock_index = i;
      open.pop_back();
    }
  }

  if (!open.empty()) {
    throw ConfigError(strf(
        "job body ends holding ",
        sections[static_cast<std::size_t>(open.back())].resource,
        "; locks must be released by job end"));
  }
  return sections;
}

}  // namespace mpcp
