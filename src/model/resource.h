// Shared resources (binary semaphores).
//
// Section 4.2: a semaphore accessed only by tasks bound to one processor
// is *local* (lives in that processor's local memory); one accessed from
// several processors is *global* (lives in shared memory). Scope is
// derived from the task bindings, never declared.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace mpcp {

enum class ResourceScope {
  kLocal,   ///< all users bound to one processor; guarded by uniprocessor PCP
  kGlobal,  ///< users span processors; guarded by the multiprocessor protocol
};

inline const char* toString(ResourceScope s) {
  return s == ResourceScope::kLocal ? "local" : "global";
}

/// A semaphore plus everything derived about it at build time.
struct ResourceInfo {
  ResourceId id;
  std::string name;
  ResourceScope scope = ResourceScope::kLocal;
  /// Local resources: the single processor whose tasks use it.
  /// Global resources: unset (meaningless under MPCP).
  std::optional<ProcessorId> home;
  /// DPCP only: the synchronization processor hosting this resource's
  /// critical sections. Defaults to the lowest-id user processor; override
  /// via TaskSystemBuilder::assignSyncProcessor.
  std::optional<ProcessorId> sync_processor;
  /// Tasks with at least one critical section on this resource,
  /// in ascending TaskId order.
  std::vector<TaskId> users;
};

}  // namespace mpcp
