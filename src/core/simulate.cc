#include "core/simulate.h"

namespace mpcp {

SimResult simulate(ProtocolKind kind, const TaskSystem& system,
                   SimConfig config) {
  PriorityTables tables(system);
  auto protocol = makeProtocol(kind, system, tables);
  Engine engine(system, *protocol, config);
  return engine.run();
}

SimResult simulateHybrid(const TaskSystem& system, const HybridPolicy& policy,
                         SimConfig config) {
  PriorityTables tables(system);
  HybridProtocol protocol(system, tables, policy);
  Engine engine(system, protocol, config);
  return engine.run();
}

}  // namespace mpcp
