#include "core/hybrid_blocking.h"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/profiles.h"
#include "common/check.h"
#include "common/math_util.h"

namespace mpcp {

namespace {

/// Processor on which a gcs on `r` executes for a job hosted on `host`.
ProcessorId executionProcessor(const TaskSystem& sys,
                               const HybridPolicy& policy, ResourceId r,
                               ProcessorId host) {
  if (policy.of(r) == GlobalPolicy::kSharedMemory) return host;
  return *sys.resource(r).sync_processor;
}

/// Elevation priority of a gcs on `r` for a job hosted on `host`.
Priority elevation(const PriorityTables& tables,
                   const HybridPolicy& policy, ResourceId r,
                   ProcessorId host) {
  if (policy.of(r) == GlobalPolicy::kSharedMemory) {
    return tables.gcsPriority(r, host);
  }
  return tables.ceiling(r);
}

}  // namespace

std::vector<HybridBlockingBreakdown> hybridBlocking(
    const TaskSystem& sys, const PriorityTables& tables,
    const HybridPolicy& policy, BlockingOptions options) {
  const std::vector<TaskProfile> profiles = buildProfiles(sys);
  std::vector<HybridBlockingBreakdown> out(sys.tasks().size());

  const auto profile = [&](const Task& t) -> const TaskProfile& {
    return profiles[static_cast<std::size_t>(t.id.value())];
  };

  for (const Task& ti : sys.tasks()) {
    const TaskProfile& pi = profile(ti);
    HybridBlockingBreakdown& b =
        out[static_cast<std::size_t>(ti.id.value())];
    const auto is_local = [&](const Task& t) {
      return t.processor == ti.processor;
    };

    // ---- F1: local blocking, identical to MPCP.
    Duration max_local_cs = 0;
    for (const Task& tl : sys.tasks()) {
      if (!is_local(tl) || tl.priority >= ti.priority) continue;
      for (const SectionUse& z : profile(tl).local_sections) {
        if (tables.ceiling(z.resource) >= ti.priority) {
          max_local_cs = std::max(max_local_cs, z.duration);
        }
      }
    }
    if (max_local_cs > 0) {
      b.local_lower_cs =
          static_cast<Duration>(pi.suspensionOpportunities() + 1) *
          max_local_cs;
    }

    // ---- F2': queue-head wait per access, mode-aware.
    for (const SectionUse& access : pi.global_sections) {
      const bool shared =
          policy.of(access.resource) == GlobalPolicy::kSharedMemory;
      Duration worst = 0;
      for (const Task& tl : sys.tasks()) {
        if (tl.id == ti.id || tl.priority >= ti.priority) continue;
        if (shared && is_local(tl)) continue;  // F5' covers these
        for (const SectionUse& z : profile(tl).global_sections) {
          if (z.resource == access.resource) {
            worst = std::max(worst, z.duration);
          }
        }
      }
      b.lower_gcs_queue += worst;
    }

    // ---- F3': higher-priority interference on shared semaphores.
    for (const Task& tj : sys.tasks()) {
      if (tj.id == ti.id || tj.priority <= ti.priority) continue;
      Duration shared_dur = 0;
      for (const SectionUse& z : profile(tj).global_sections) {
        if (pi.global_resources.count(z.resource.value()) == 0) continue;
        // Host-local higher-priority shared-memory gcs = plain preemption.
        if (is_local(tj) &&
            policy.of(z.resource) == GlobalPolicy::kSharedMemory) {
          continue;
        }
        shared_dur += z.duration;
      }
      if (shared_dur > 0) {
        b.higher_gcs_remote += ceilDiv(ti.period, tj.period) * shared_dur;
      }
    }

    // ---- F4': preemption of shared-mode direct blockers.
    const int procs = sys.processorCount();
    for (int k = 0; k < procs; ++k) {
      if (k == ti.processor.value()) continue;
      const ProcessorId pk(k);
      Priority min_blocker = kPriorityFloor;
      bool has_blocker = false;
      for (TaskId tl_id : sys.tasksOn(pk)) {
        const Task& tl = sys.task(tl_id);
        if (tl.priority >= ti.priority) continue;
        for (const SectionUse& z : profile(tl).global_sections) {
          if (pi.global_resources.count(z.resource.value()) == 0) continue;
          if (policy.of(z.resource) != GlobalPolicy::kSharedMemory) continue;
          const Priority gp = elevation(tables, policy, z.resource, pk);
          if (!has_blocker || gp < min_blocker) min_blocker = gp;
          has_blocker = true;
        }
      }
      if (!has_blocker) continue;

      for (TaskId tj_id : sys.tasksOn(pk)) {
        const Task& tj = sys.task(tj_id);
        Duration qualifying = 0;
        for (const SectionUse& z : profile(tj).global_sections) {
          // Only sections that *execute* on P_k can preempt the blocker.
          if (executionProcessor(sys, policy, z.resource, pk) != pk) continue;
          const Priority gp = elevation(tables, policy, z.resource, pk);
          if (gp <= min_blocker) continue;
          if (tj.priority > ti.priority &&
              pi.global_resources.count(z.resource.value()) != 0) {
            continue;  // charged by F3'
          }
          qualifying += z.duration;
        }
        if (qualifying > 0) {
          b.blocking_proc_gcs += ceilDiv(ti.period, tj.period) * qualifying;
        }
      }
    }

    // ---- F5': lower-priority local *shared-mode* gcs's.
    for (const Task& tl : sys.tasks()) {
      if (!is_local(tl) || tl.id == ti.id || tl.priority >= ti.priority) {
        continue;
      }
      const TaskProfile& pl = profile(tl);
      int ng_shared = 0;
      Duration max_shared = 0;
      for (const SectionUse& z : pl.global_sections) {
        if (policy.of(z.resource) == GlobalPolicy::kSharedMemory) {
          ++ng_shared;
          max_shared = std::max(max_shared, z.duration);
        }
      }
      if (ng_shared == 0) continue;
      const Duration a =
          static_cast<Duration>(pi.suspensionOpportunities() + 1);
      const Duration c = static_cast<Duration>(2 * ng_shared);
      const Duration count =
          options.paper_literal_factor5 ? std::max(a, c) : std::min(a, c);
      b.local_lower_gcs += count * max_shared;
    }

    // ---- D3': agent interference on visited sync processors.
    std::map<std::int32_t, std::vector<std::pair<ResourceId, Priority>>>
        used_on;  // sync proc -> (resource, ceiling) J_i accesses there
    for (const SectionUse& access : pi.global_sections) {
      if (policy.of(access.resource) != GlobalPolicy::kMessageBased) continue;
      const ProcessorId sp = *sys.resource(access.resource).sync_processor;
      used_on[sp.value()].emplace_back(access.resource,
                                       tables.ceiling(access.resource));
    }
    const auto min_ceiling = [&](std::int32_t proc,
                                 ResourceId excluded) -> std::optional<Priority> {
      const auto it = used_on.find(proc);
      if (it == used_on.end()) return std::nullopt;
      std::optional<Priority> m;
      for (const auto& [r, c] : it->second) {
        if (r == excluded) continue;
        if (!m.has_value() || c < *m) m = c;
      }
      return m;
    };
    if (!used_on.empty()) {
      for (const Task& tj : sys.tasks()) {
        if (tj.id == ti.id) continue;
        Duration interfering = 0;
        for (const SectionUse& z : profile(tj).global_sections) {
          if (policy.of(z.resource) == GlobalPolicy::kSharedMemory) {
            // A shared-memory gcs executes on tj's host at gcsPriority
            // elevation — above every message-based agent ceiling — so
            // when that host doubles as a sync processor J_i's agents
            // visit, the section delays them. The shared-side terms
            // never charge this cross-kind channel: F2' covers only
            // the queue head of resources J_i itself locks, and F3'
            // only instances of higher-priority tasks on them.
            if (used_on.find(tj.processor.value()) == used_on.end()) continue;
            if (is_local(tj) && tj.priority > ti.priority) continue;
            if (tj.priority > ti.priority &&
                pi.global_resources.count(z.resource.value()) != 0) {
              continue;  // F3' already charges these instances
            }
            interfering += z.duration;
            continue;
          }
          const std::int32_t sp =
              sys.resource(z.resource).sync_processor->value();
          if (pi.global_resources.count(z.resource.value()) != 0) {
            // Same-resource queueing is charged by F2' (one lower-priority
            // holder per access) and F3' (higher-priority re-entries) —
            // but a lower-priority task's section also delays J_i's agents
            // for the *other* resources J_i uses on that sync CPU
            // (equal-or-higher ceilings are not preemptable), a channel
            // the queue charges do not cover (mirrors blocking_dpcp D3).
            if (tj.priority > ti.priority) continue;
            const auto m = min_ceiling(sp, z.resource);
            if (!m.has_value()) continue;
            if (tables.ceiling(z.resource) < *m) continue;
            interfering += z.duration;
            continue;
          }
          const auto m = min_ceiling(sp, ResourceId());
          if (!m.has_value()) continue;
          if (tables.ceiling(z.resource) < *m) continue;
          interfering += z.duration;
        }
        if (interfering > 0) {
          b.agent_interference += ceilDiv(ti.period, tj.period) * interfering;
        }
      }
    }

    // ---- D4': message-mode gcs's of others executing on my host.
    for (const Task& tj : sys.tasks()) {
      if (tj.id == ti.id) continue;
      const bool local_higher = is_local(tj) && tj.priority > ti.priority;
      if (local_higher) continue;  // inside the preemption term
      Duration load = 0;
      for (const SectionUse& z : profile(tj).global_sections) {
        if (policy.of(z.resource) != GlobalPolicy::kMessageBased) continue;
        if (*sys.resource(z.resource).sync_processor == ti.processor) {
          load += z.duration;
        }
      }
      if (load > 0) {
        b.host_agent_load += ceilDiv(ti.period, tj.period) * load;
      }
    }

    // ---- deferred execution.
    if (options.include_deferred_execution) {
      for (const Task& tj : sys.tasks()) {
        if (!is_local(tj) || tj.priority <= ti.priority) continue;
        if (profile(tj).suspensionOpportunities() > 0) {
          b.deferred_execution += tj.wcet;
        }
      }
    }
  }
  return out;
}

}  // namespace mpcp
