#include "core/protocol_factory.h"

#include "common/check.h"
#include "core/mpcp_protocol.h"
#include "protocols/dpcp.h"
#include "protocols/none.h"
#include "protocols/pcp.h"
#include "protocols/pip.h"

namespace mpcp {

const char* toString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kNone: return "none";
    case ProtocolKind::kNonePrio: return "none-prio";
    case ProtocolKind::kPip: return "pip";
    case ProtocolKind::kPcp: return "pcp";
    case ProtocolKind::kMpcp: return "mpcp";
    case ProtocolKind::kDpcp: return "dpcp";
  }
  return "?";
}

std::unique_ptr<SyncProtocol> makeProtocol(ProtocolKind kind,
                                           const TaskSystem& system,
                                           const PriorityTables& tables) {
  switch (kind) {
    case ProtocolKind::kNone:
      return std::make_unique<NoProtocol>(system, QueueOrder::kFifo);
    case ProtocolKind::kNonePrio:
      return std::make_unique<NoProtocol>(system, QueueOrder::kPriority);
    case ProtocolKind::kPip:
      return std::make_unique<PipProtocol>(system);
    case ProtocolKind::kPcp:
      return std::make_unique<PcpProtocol>(system, tables);
    case ProtocolKind::kMpcp:
      return std::make_unique<MpcpProtocol>(system, tables);
    case ProtocolKind::kDpcp:
      return std::make_unique<DpcpProtocol>(system, tables);
  }
  throw ConfigError("unknown protocol kind");
}

}  // namespace mpcp
