#include "core/protocol_factory.h"

#include "core/protocol_registry.h"

namespace mpcp {

const char* toString(ProtocolKind kind) { return protocolSpec(kind).name; }

std::unique_ptr<SyncProtocol> makeProtocol(ProtocolKind kind,
                                           const TaskSystem& system,
                                           const PriorityTables& tables) {
  return protocolSpec(kind).make(system, tables);
}

}  // namespace mpcp
