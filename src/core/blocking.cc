#include "core/blocking.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace mpcp {

MpcpBlockingAnalysis::MpcpBlockingAnalysis(const TaskSystem& system,
                                           const PriorityTables& tables,
                                           BlockingOptions options)
    : system_(&system),
      tables_(&tables),
      options_(options),
      profiles_(buildProfiles(system)) {
  breakdowns_.reserve(system.tasks().size());
  for (const Task& t : system.tasks()) {
    breakdowns_.push_back(computeFor(t));
  }
}

const BlockingBreakdown& MpcpBlockingAnalysis::blocking(TaskId t) const {
  MPCP_CHECK(t.valid() &&
                 static_cast<std::size_t>(t.value()) < breakdowns_.size(),
             "blocking(): unknown task " << t);
  return breakdowns_[static_cast<std::size_t>(t.value())];
}

BlockingBreakdown MpcpBlockingAnalysis::computeFor(const Task& ti) const {
  const TaskSystem& sys = *system_;
  const TaskProfile& pi = profiles_[static_cast<std::size_t>(ti.id.value())];
  BlockingBreakdown b;

  const auto profile = [&](const Task& t) -> const TaskProfile& {
    return profiles_[static_cast<std::size_t>(t.id.value())];
  };
  const auto is_local = [&](const Task& t) {
    return t.processor == ti.processor;
  };

  // ---- F1: local blocking from lower-priority local critical sections.
  Duration max_local_cs = 0;
  for (const Task& tl : sys.tasks()) {
    if (!is_local(tl) || tl.priority >= ti.priority) continue;
    for (const SectionUse& z : profile(tl).local_sections) {
      if (tables_->ceiling(z.resource) >= ti.priority) {
        max_local_cs = std::max(max_local_cs, z.duration);
      }
    }
  }
  // Theorem 1: one lower-priority local section per suspension (global
  // access or voluntary) plus one at job start.
  b.local_lower_cs =
      static_cast<Duration>(pi.suspensionOpportunities() + 1) * max_local_cs;
  if (max_local_cs == 0) b.local_lower_cs = 0;

  // ---- F2: one lower-priority gcs ahead per global access (priority-
  // ordered queues), remote lower-priority holders only (host-processor
  // lower-priority gcs's are F5's job).
  for (const SectionUse& access : pi.global_sections) {
    Duration worst = 0;
    for (const Task& tl : sys.tasks()) {
      if (tl.id == ti.id || tl.priority >= ti.priority || is_local(tl)) {
        continue;
      }
      for (const SectionUse& z : profile(tl).global_sections) {
        if (z.resource == access.resource) {
          worst = std::max(worst, z.duration);
        }
      }
    }
    b.lower_gcs_queue += worst;
  }

  // ---- F3: remote higher-priority tasks on shared semaphores.
  for (const Task& tj : sys.tasks()) {
    if (tj.id == ti.id || tj.priority <= ti.priority || is_local(tj)) {
      continue;
    }
    Duration shared = 0;
    for (const SectionUse& z : profile(tj).global_sections) {
      if (pi.global_resources.count(z.resource.value()) != 0) {
        shared += z.duration;
      }
    }
    if (shared > 0) {
      b.higher_gcs_remote += ceilDiv(ti.period, tj.period) * shared;
    }
  }

  // ---- F4: higher-gcs-priority preemption on blocking processors.
  // A blocking processor hosts a lower-priority task with a gcs on a
  // semaphore in GS_i (that gcs can directly block J_i under F2).
  const int procs = sys.processorCount();
  for (int k = 0; k < procs; ++k) {
    if (k == ti.processor.value()) continue;
    const ProcessorId pk(k);
    // Directly-blocking gcs priorities on P_k.
    Priority min_blocker = kPriorityFloor;
    bool has_blocker = false;
    for (TaskId tl_id : sys.tasksOn(pk)) {
      const Task& tl = sys.task(tl_id);
      if (tl.priority >= ti.priority) continue;
      for (const SectionUse& z : profile(tl).global_sections) {
        if (pi.global_resources.count(z.resource.value()) == 0) continue;
        const Priority gp = tables_->gcsPriority(z.resource, pk);
        if (!has_blocker || gp < min_blocker) min_blocker = gp;
        has_blocker = true;
      }
    }
    if (!has_blocker) continue;  // P_k is not a blocking processor for J_i

    for (TaskId tj_id : sys.tasksOn(pk)) {
      const Task& tj = sys.task(tj_id);
      Duration qualifying = 0;
      for (const SectionUse& z : profile(tj).global_sections) {
        const Priority gp = tables_->gcsPriority(z.resource, pk);
        if (gp <= min_blocker) continue;  // cannot preempt any blocker
        // Skip gcs's F3 already charged: higher-priority remote task on a
        // shared semaphore.
        if (tj.priority > ti.priority &&
            pi.global_resources.count(z.resource.value()) != 0) {
          continue;
        }
        qualifying += z.duration;
      }
      if (qualifying > 0) {
        b.blocking_proc_gcs += ceilDiv(ti.period, tj.period) * qualifying;
      }
    }
  }

  // ---- F5: lower-priority local gcs's preempting J_i's normal code.
  for (const Task& tl : sys.tasks()) {
    if (!is_local(tl) || tl.id == ti.id || tl.priority >= ti.priority) {
      continue;
    }
    const TaskProfile& pl = profile(tl);
    if (pl.ng() == 0) continue;
    const Duration a =
        static_cast<Duration>(pi.suspensionOpportunities() + 1);
    const Duration c = static_cast<Duration>(2 * pl.ng());
    const Duration count =
        options_.paper_literal_factor5 ? std::max(a, c) : std::min(a, c);
    b.local_lower_gcs += count * pl.maxGcs();
  }

  // ---- Deferred-execution penalty: suspending higher-priority local
  // tasks can each inflict one extra preemption per period.
  if (options_.include_deferred_execution) {
    for (const Task& tj : sys.tasks()) {
      if (!is_local(tj) || tj.priority <= ti.priority) continue;
      if (profile(tj).suspensionOpportunities() > 0) {
        b.deferred_execution += tj.wcet;
      }
    }
  }

  return b;
}

}  // namespace mpcp
