// The protocol registry: the single name-keyed source of truth for every
// synchronization protocol the repo speaks. One ProtocolSpec per
// protocol carries the canonical name, the ProtocolKind, a factory, and
// capability flags; the factory shims in core/protocol_factory.h, the
// CLI's --protocol parser, the analyzer, and the fuzzer's protocol list
// all delegate here, so they can never disagree about which protocols
// exist or what they are called.
//
// Registration is a single static table in protocol_registry.cc rather
// than scattered static-initializer self-registration: the table keeps
// the canonical order deterministic (fuzz corpora and repro files index
// protocols by this order), survives static-library dead-stripping, and
// makes "add a protocol" a one-line diff next to its peers. New
// protocols MUST be appended at the end — corpus replays select
// protocols by name list order, and reordering would silently retarget
// old repro files.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/ceilings.h"
#include "core/hybrid_protocol.h"
#include "core/protocol_factory.h"
#include "model/task_system.h"
#include "sim/protocol.h"

namespace mpcp {

struct ProtocolSpec {
  ProtocolKind kind;
  const char* name;     ///< canonical CLI/fuzz/repro name, e.g. "spin-fifo"
  const char* summary;  ///< one-line description for --help and docs
  bool analyzable;      ///< has a bounded-blocking analysis in src/analysis
  bool suspension_based;  ///< blocked jobs suspend (vs busy-wait/spin)
  std::unique_ptr<SyncProtocol> (*make)(const TaskSystem& system,
                                        const PriorityTables& tables);
};

/// All registered protocols, in canonical (registration) order.
[[nodiscard]] const std::vector<ProtocolSpec>& protocolRegistry();

/// The spec for `kind`. Every enumerator is registered.
[[nodiscard]] const ProtocolSpec& protocolSpec(ProtocolKind kind);

/// Looks a protocol up by canonical name; nullptr when unknown.
[[nodiscard]] const ProtocolSpec* findProtocol(std::string_view name);

/// Name -> kind, throwing ConfigError with the known-name list when
/// `name` is not registered (first-class error for CLI/config paths).
[[nodiscard]] ProtocolKind protocolKindFromName(const std::string& name);

/// Canonical names in registration order (the fuzzer's protocol list).
[[nodiscard]] const std::vector<std::string>& protocolNameList();

/// "none, none-prio, ..." — for diagnostics and usage text.
[[nodiscard]] std::string knownProtocolNames();

/// The canonical mixed policy behind ProtocolKind::kHybrid (and the
/// fuzzer's "hybrid"): global resources alternate shared-memory /
/// message-based by resource id parity.
[[nodiscard]] HybridPolicy defaultHybridPolicy(const TaskSystem& system);

}  // namespace mpcp
