// The shared-memory Multiprocessor Priority Ceiling Protocol — the
// paper's contribution (Section 5, rules 1–7).
//
//  1. A job uses its assigned priority outside critical sections.
//  2. Local semaphores follow the uniprocessor PCP on each processor
//     (LocalPcp), including priority inheritance on blocking.
//  3. A job inside a gcs guarded by S_g runs at the gcs's *fixed*
//     preassigned priority: P_G + max{priority of remote users of S_g}
//     (Section 4.4) — static inheritance to the highest level a remote
//     waiter could ever impose, so no dynamic priority changes are needed.
//  4. Gcs's preempt each other by gcs priority (follows from 3: the
//     dispatcher compares effective priorities).
//  5. A free global semaphore is granted by an atomic RMW — in the DES,
//     immediately inside onLock.
//  6. A held global semaphore suspends the requester into a
//     priority-ordered queue keyed by its *normal assigned* priority.
//     The host processor is released: lower-priority local jobs run
//     (the source of blocking factors 1 and 5 in the analysis).
//  7. V(S_g) hands the semaphore to the highest-priority waiter, which
//     becomes eligible on its host processor at its gcs priority.
//
// When the system has one processor and hence no global semaphores, the
// protocol reduces to the uniprocessor PCP (tested as a property).
#pragma once

#include <vector>

#include "analysis/ceilings.h"
#include "protocols/local_pcp.h"
#include "protocols/sem_state.h"
#include "sim/protocol.h"

namespace mpcp {

class MpcpProtocol final : public SyncProtocol {
 public:
  /// Throws ConfigError if the system contains nested global critical
  /// sections (the paper's base assumption; collapse them into group
  /// locks first — see taskgen/group_locks.h).
  MpcpProtocol(const TaskSystem& system, const PriorityTables& tables);

  void attach(Engine& engine) override;
  LockOutcome onLock(Job& j, ResourceId r) override;
  void onUnlock(Job& j, ResourceId r) override;
  void onJobFinished(Job& j) override;
  [[nodiscard]] const char* name() const override { return "mpcp"; }

 private:
  const TaskSystem* system_;
  const PriorityTables* tables_;
  LocalPcp local_;
  std::vector<SemState> global_;  // indexed by resource id; local unused
};

}  // namespace mpcp
