#include "core/hybrid_protocol.h"

#include <algorithm>

#include "common/check.h"
#include "common/strf.h"

namespace mpcp {

HybridPolicy HybridPolicy::allShared(const TaskSystem& system) {
  return HybridPolicy(std::vector<GlobalPolicy>(
      system.resources().size(), GlobalPolicy::kSharedMemory));
}

HybridPolicy HybridPolicy::allMessage(const TaskSystem& system) {
  return HybridPolicy(std::vector<GlobalPolicy>(
      system.resources().size(), GlobalPolicy::kMessageBased));
}

GlobalPolicy HybridPolicy::of(ResourceId r) const {
  MPCP_CHECK(r.valid() &&
                 static_cast<std::size_t>(r.value()) < per_resource_.size(),
             "HybridPolicy::of: unknown resource " << r);
  return per_resource_[static_cast<std::size_t>(r.value())];
}

void HybridPolicy::set(ResourceId r, GlobalPolicy policy) {
  MPCP_CHECK(r.valid() &&
                 static_cast<std::size_t>(r.value()) < per_resource_.size(),
             "HybridPolicy::set: unknown resource " << r);
  per_resource_[static_cast<std::size_t>(r.value())] = policy;
}

HybridProtocol::HybridProtocol(const TaskSystem& system,
                               const PriorityTables& tables,
                               HybridPolicy policy)
    : system_(&system),
      tables_(&tables),
      policy_(std::move(policy)),
      local_(system, tables),
      global_(system.resources().size()) {
  for (const Task& t : system.tasks()) {
    for (const CriticalSection& cs : t.sections) {
      if (cs.parent < 0) continue;
      const CriticalSection& outer =
          t.sections[static_cast<std::size_t>(cs.parent)];
      const bool inner_global = system.isGlobal(cs.resource);
      const bool outer_global = system.isGlobal(outer.resource);
      if (!inner_global && !outer_global) continue;  // local PCP nest: fine
      if (!inner_global || !outer_global) {
        throw ConfigError(strf(t.name,
                               ": hybrid protocol cannot nest local/global "
                               "sections across kinds (",
                               outer.resource, " encloses ", cs.resource,
                               ")"));
      }
      const GlobalPolicy pi = policy_.of(cs.resource);
      const GlobalPolicy po = policy_.of(outer.resource);
      if (pi != GlobalPolicy::kMessageBased ||
          po != GlobalPolicy::kMessageBased) {
        throw ConfigError(strf(
            t.name, ": nested global sections require kMessageBased policy "
            "on both semaphores (", outer.resource, " encloses ",
            cs.resource, ")"));
      }
      const auto sp_in = system.resource(cs.resource).sync_processor;
      const auto sp_out = system.resource(outer.resource).sync_processor;
      if (sp_in != sp_out) {
        throw ConfigError(strf(
            t.name, ": nested message-based sections must share a sync "
            "processor (", outer.resource, " encloses ", cs.resource, ")"));
      }
    }
  }
  reserveSemQueues(global_, 2 * system.tasks().size());
}

void HybridProtocol::attach(Engine& engine) {
  SyncProtocol::attach(engine);
  local_.attach(engine);
}

Priority HybridProtocol::elevationFor(const Job& j, ResourceId r) const {
  return policy_.of(r) == GlobalPolicy::kSharedMemory
             ? tables_->gcsPriority(r, j.host)
             : tables_->ceiling(r);
}

LockOutcome HybridProtocol::onLock(Job& j, ResourceId r) {
  if (!system_->isGlobal(r)) return local_.onLock(j, r);

  SemState& s = global_[static_cast<std::size_t>(r.value())];
  if (s.holder == &j) return LockOutcome::kGranted;  // handed off
  if (s.holder == nullptr) {
    s.holder = &j;
    engine_->noteGlobalHolder(r, &j);
    // Message-based sections can nest: keep the highest elevation among
    // held message-based semaphores.
    j.elevated = std::max(j.elevated, elevationFor(j, r));
    engine_->notePriorityChanged(j);
    engine_->emit({.kind = Ev::kGcsEnter, .job = j.id, .processor = j.host,
                   .resource = r, .priority = j.elevated});
    if (policy_.of(r) == GlobalPolicy::kMessageBased) {
      engine_->migrate(j, *system_->resource(r).sync_processor);
      // Request-order queueing among equal-ceiling agents (see
      // DpcpProtocol::onLock): the grant path restamps to match the
      // handoff path's wake().
      engine_->restampArrival(j);
    }
    return LockOutcome::kGranted;
  }
  s.queue.push(&j, j.base);
  engine_->parkWaiting(j, r, s.holder->id);
  return LockOutcome::kWaiting;
}

void HybridProtocol::onUnlock(Job& j, ResourceId r) {
  if (!system_->isGlobal(r)) {
    local_.onUnlock(j, r);
    return;
  }

  SemState& s = global_[static_cast<std::size_t>(r.value())];
  MPCP_CHECK(s.holder == &j, j.id << " releasing " << r << " it does not hold");

  // Remaining elevation from still-held global semaphores (message-based
  // nesting only; shared-memory sections are flat). The engine pops
  // j.held after this call, so skip `r` explicitly.
  Priority remaining = kPriorityFloor;
  bool skipped = false;
  for (ResourceId held : j.held) {
    if (!skipped && held == r) {
      skipped = true;
      continue;
    }
    if (system_->isGlobal(held)) {
      remaining = std::max(remaining, elevationFor(j, held));
    }
  }
  j.elevated = remaining;
  engine_->notePriorityChanged(j);
  if (remaining == kPriorityFloor) {
    engine_->emit({.kind = Ev::kGcsExit, .job = j.id, .processor = j.current,
                   .resource = r, .priority = j.base});
    if (j.current != j.host) engine_->migrate(j, j.host);
  }

  if (s.queue.empty()) {
    s.holder = nullptr;
    engine_->noteGlobalHolder(r, nullptr);
    engine_->emit({.kind = Ev::kUnlock, .job = j.id, .processor = j.current,
                   .resource = r});
    return;
  }
  Job* next = s.queue.pop();
  s.holder = next;
  engine_->noteGlobalHolder(r, next);
  next->elevated = std::max(next->elevated, elevationFor(*next, r));
  engine_->counters().res(r).handoffs++;
  engine_->emit({.kind = Ev::kHandoff, .job = j.id, .processor = j.current,
                 .resource = r, .other = next->id});
  engine_->emit({.kind = Ev::kGcsEnter, .job = next->id,
                 .processor = next->host, .resource = r,
                 .priority = next->elevated});
  if (policy_.of(r) == GlobalPolicy::kMessageBased) {
    engine_->migrate(*next, *system_->resource(r).sync_processor);
  }
  engine_->wake(*next);
}

void HybridProtocol::onJobFinished(Job& j) { local_.onJobFinished(j); }

}  // namespace mpcp
