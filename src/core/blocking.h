// Worst-case blocking analysis for the shared-memory protocol —
// Section 5.1's five blocking factors plus the deferred-execution penalty.
//
// For a job J_i of task tau_i bound to processor P_d, with NG_i global
// critical sections per job:
//
//  F1  Local blocking. Each of J_i's suspensions — NG_i global accesses
//      plus any voluntary SuspendOps — plus job start lets a
//      lower-priority local job seize a local semaphore with ceiling
//      >= P_i and block J_i once on resumption (Theorem 1):
//        (suspensionOpportunities + 1) * max{ dur(z) : z local cs of
//        lower-priority local task, ceiling(z) >= P_i }.
//
//  F2  Lower-priority gcs ahead in the queue. Semaphore queues are
//      priority-ordered, so each global access waits for at most one
//      lower-priority holder:
//        sum over J_i's gcs accesses on S of
//          max{ dur(z) : z gcs on S of a lower-priority task *not on P_d* }.
//      (Host-processor lower-priority gcs's are excluded here because F5
//      already accounts for them — the paper notes this overlap removal.)
//
//  F3  Remote preemption penalty. Higher-priority *remote* tasks locking
//      semaphores in GS_i can be served first on every access:
//        sum over remote tau_j, P_j > P_i, of
//          ceil(T_i/T_j) * (total dur of tau_j's gcs's on GS_i).
//      (Host-processor higher-priority gcs's are ordinary preemption and
//      belong to the utilization term, not B_i.)
//
//  F4  Blocking processors. A lower-priority gcs that directly blocks J_i
//      (F2) can itself be preempted by higher-gcs-priority sections on its
//      processor:
//        for each blocking processor P_k and each task tau_j on P_k:
//          ceil(T_i/T_j) * (total dur of tau_j's gcs's whose gcs priority
//          exceeds that of some directly-blocking gcs on P_k),
//      excluding gcs's already counted by F3 (tau_j remote higher-priority
//      on a shared semaphore).
//
//  F5  Lower-priority local gcs's. Gcs's run above P_H, so a lower-
//      priority local job inside a gcs preempts J_i's normal execution:
//        for each lower-priority local tau_l with NG_l > 0:
//          min(suspensionOpportunities_i + 1, 2 * NG_l) * maxGcs(tau_l).
//      The paper's OCR prints "max"; both operands are independently valid
//      upper bounds on the same count (the paper derives NG_i + 1 from
//      outstanding-request repetition and 2*NG_l from at most two
//      interfering instances of tau_l within T_i), so their min is sound
//      and tight. BlockingOptions::paper_literal_factor5 selects the
//      literal "max" reading.
//
//  Deferred execution. A suspending higher-priority local task arrives
//  "compressed" after its suspension, costing lower-priority tasks up to
//  one extra preemption per period (Section 5.1's closing remark, citing
//  [5, 8]); we charge C_j for every suspending higher-priority local task.
//
// B_i = F1 + F2 + F3 + F4 + F5 (+ deferred-execution when enabled), fed
// into Theorem 3's utilization test or the response-time analysis.
#pragma once

#include <vector>

#include "analysis/ceilings.h"
#include "analysis/profiles.h"
#include "common/types.h"
#include "model/task_system.h"

namespace mpcp {

struct BlockingOptions {
  /// Use the paper text's literal max(NG_i + 1, 2*NG_l) in F5 instead of
  /// the sound-and-tight min(.) (see header comment).
  bool paper_literal_factor5 = false;
  /// Include the deferred-execution penalty in total().
  bool include_deferred_execution = true;
};

/// Per-factor decomposition of the worst-case blocking bound of one task.
struct BlockingBreakdown {
  Duration local_lower_cs = 0;      ///< F1
  Duration lower_gcs_queue = 0;     ///< F2
  Duration higher_gcs_remote = 0;   ///< F3
  Duration blocking_proc_gcs = 0;   ///< F4
  Duration local_lower_gcs = 0;     ///< F5
  Duration deferred_execution = 0;  ///< penalty (0 when disabled)

  [[nodiscard]] Duration total() const {
    return local_lower_cs + lower_gcs_queue + higher_gcs_remote +
           blocking_proc_gcs + local_lower_gcs + deferred_execution;
  }
  /// The suspension-driven part (F2+F3+F4): how long the job can sit in
  /// global wait queues. Used as release jitter in the response-time
  /// analysis of higher-priority tasks.
  [[nodiscard]] Duration remoteSuspension() const {
    return lower_gcs_queue + higher_gcs_remote + blocking_proc_gcs;
  }
};

/// Computes the Section 5.1 bounds for every task of a system running the
/// shared-memory protocol. Requires non-nested global sections (same
/// precondition as MpcpProtocol).
class MpcpBlockingAnalysis {
 public:
  MpcpBlockingAnalysis(const TaskSystem& system, const PriorityTables& tables,
                       BlockingOptions options = {});

  [[nodiscard]] const BlockingBreakdown& blocking(TaskId t) const;
  [[nodiscard]] const std::vector<BlockingBreakdown>& all() const {
    return breakdowns_;
  }
  [[nodiscard]] const std::vector<TaskProfile>& profiles() const {
    return profiles_;
  }

 private:
  BlockingBreakdown computeFor(const Task& ti) const;

  const TaskSystem* system_;
  const PriorityTables* tables_;
  BlockingOptions options_;
  std::vector<TaskProfile> profiles_;
  std::vector<BlockingBreakdown> breakdowns_;
};

}  // namespace mpcp
