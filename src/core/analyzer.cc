#include "core/analyzer.h"

#include "analysis/blocking_pcp.h"
#include "analysis/profiles.h"
#include "common/check.h"
#include "common/strf.h"
#include "core/protocol_registry.h"

namespace mpcp {

namespace {

/// A job's own voluntary suspension delays it exactly like blocking (it
/// is not executing and not preempted), and defers its remaining
/// computation (jitter for lower-priority neighbours). Fold it into both
/// vectors.
void addSelfSuspension(const TaskSystem& system,
                       std::vector<Duration>& blocking,
                       std::vector<Duration>& jitter) {
  const auto profiles = buildProfiles(system);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    blocking[i] += profiles[i].total_suspension;
    jitter[i] += profiles[i].total_suspension;
  }
}

}  // namespace

ProtocolAnalysis analyzeUnder(ProtocolKind kind, const TaskSystem& system,
                              const AnalyzerOptions& options) {
  if (kind == ProtocolKind::kHybrid) {
    ProtocolAnalysis out =
        analyzeHybrid(system, defaultHybridPolicy(system), options);
    out.kind = ProtocolKind::kHybrid;
    return out;
  }

  PriorityTables tables(system);
  ProtocolAnalysis out;
  out.kind = kind;
  const std::size_t n = system.tasks().size();
  // Spin protocols: the busy-wait occupies the processor, so it must be
  // charged to lower-priority neighbours as inflated interference, not
  // just to the task's own B_i (see analyzeSchedulability).
  std::vector<Duration> inflation;

  switch (kind) {
    case ProtocolKind::kPcp: {
      out.blocking = pcpBlocking(system, tables);
      out.jitter.assign(n, 0);  // PCP jobs never self-suspend
      break;
    }
    case ProtocolKind::kMpcp: {
      const MpcpBlockingAnalysis analysis(system, tables, options.mpcp);
      out.blocking.reserve(n);
      out.jitter.reserve(n);
      for (const BlockingBreakdown& b : analysis.all()) {
        out.blocking.push_back(b.total());
        out.jitter.push_back(b.remoteSuspension());
      }
      break;
    }
    case ProtocolKind::kDpcp: {
      const auto breakdowns = dpcpBlocking(system, tables, options.dpcp);
      out.blocking.reserve(n);
      out.jitter.reserve(n);
      for (const DpcpBlockingBreakdown& b : breakdowns) {
        out.blocking.push_back(b.total());
        out.jitter.push_back(b.remoteSuspension());
      }
      break;
    }
    case ProtocolKind::kSpinFifo:
    case ProtocolKind::kSpinPrio: {
      const auto breakdowns = spinBlocking(
          system, kind == ProtocolKind::kSpinPrio, options.spin);
      out.blocking.reserve(n);
      out.jitter.reserve(n);
      for (const SpinBlockingBreakdown& b : breakdowns) {
        out.blocking.push_back(b.total());
        out.jitter.push_back(b.remoteSuspension());  // always 0: no suspend
      }
      inflation = spinInflation(breakdowns);
      break;
    }
    default:
      throw ConfigError(strf(
          "analyzeUnder: no bounded-blocking analysis exists for protocol '",
          toString(kind),
          "' — unbounded priority inversion (Section 3.3)"));
  }

  addSelfSuspension(system, out.blocking, out.jitter);
  out.report =
      analyzeSchedulability(system, out.blocking, out.jitter, inflation);
  return out;
}

ProtocolAnalysis analyzeHybrid(const TaskSystem& system,
                               const HybridPolicy& policy,
                               const AnalyzerOptions& options) {
  PriorityTables tables(system);
  ProtocolAnalysis out;
  out.kind = ProtocolKind::kMpcp;  // closest kind tag; informational only
  const auto breakdowns =
      hybridBlocking(system, tables, policy, options.mpcp);
  out.blocking.reserve(breakdowns.size());
  out.jitter.reserve(breakdowns.size());
  for (const HybridBlockingBreakdown& b : breakdowns) {
    out.blocking.push_back(b.total());
    out.jitter.push_back(b.remoteSuspension());
  }
  addSelfSuspension(system, out.blocking, out.jitter);
  out.report = analyzeSchedulability(system, out.blocking, out.jitter);
  return out;
}

}  // namespace mpcp
