// Convenience wrapper: build tables + protocol + engine and run.
#pragma once

#include "core/hybrid_protocol.h"
#include "core/protocol_factory.h"
#include "sim/engine.h"
#include "sim/result.h"

namespace mpcp {

/// Simulates `system` under `kind`. One call = one deterministic run.
[[nodiscard]] SimResult simulate(ProtocolKind kind, const TaskSystem& system,
                                 SimConfig config = {});

/// Simulates `system` under the hybrid protocol with `policy`.
[[nodiscard]] SimResult simulateHybrid(const TaskSystem& system,
                                       const HybridPolicy& policy,
                                       SimConfig config = {});

}  // namespace mpcp
