// One-stop protocol construction for experiments: pick a ProtocolKind,
// get a SyncProtocol. Owns nothing about the task system.
#pragma once

#include <memory>
#include <string>

#include "analysis/ceilings.h"
#include "model/task_system.h"
#include "sim/protocol.h"

namespace mpcp {

enum class ProtocolKind {
  kNone,      ///< plain semaphores, FIFO queues, no priority management
  kNonePrio,  ///< plain semaphores with priority-ordered queues
  kPip,       ///< priority inheritance (cross-processor)
  kPcp,       ///< uniprocessor priority ceiling protocol (no globals)
  kMpcp,      ///< the paper's shared-memory protocol
  kDpcp,      ///< message-based baseline [8]
  kHybrid,    ///< per-resource MPCP/DPCP mix (canonical id-parity policy)
  kSpinFifo,  ///< MSRP-style non-preemptive FIFO spin locks
  kSpinPrio,  ///< non-preemptive priority-ordered spin locks
};

/// Canonical name of `kind` ("mpcp", "spin-fifo", ...). Never "?": every
/// enumerator is registered; see core/protocol_registry.h.
[[nodiscard]] const char* toString(ProtocolKind kind);

/// Constructs the protocol. `tables` must outlive the returned object and
/// must have been computed from `system`. Both this and `toString` are
/// thin shims over the protocol registry (core/protocol_registry.h),
/// which is the single source of truth for the name<->kind<->factory
/// mapping shared by the engine, the CLI, the analyzer, and the fuzzer.
[[nodiscard]] std::unique_ptr<SyncProtocol> makeProtocol(
    ProtocolKind kind, const TaskSystem& system,
    const PriorityTables& tables);

}  // namespace mpcp
