// One-stop protocol construction for experiments: pick a ProtocolKind,
// get a SyncProtocol. Owns nothing about the task system.
#pragma once

#include <memory>
#include <string>

#include "analysis/ceilings.h"
#include "model/task_system.h"
#include "sim/protocol.h"

namespace mpcp {

enum class ProtocolKind {
  kNone,      ///< plain semaphores, FIFO queues, no priority management
  kNonePrio,  ///< plain semaphores with priority-ordered queues
  kPip,       ///< priority inheritance (cross-processor)
  kPcp,       ///< uniprocessor priority ceiling protocol (no globals)
  kMpcp,      ///< the paper's shared-memory protocol
  kDpcp,      ///< message-based baseline [8]
};

[[nodiscard]] const char* toString(ProtocolKind kind);

/// Constructs the protocol. `tables` must outlive the returned object and
/// must have been computed from `system`.
[[nodiscard]] std::unique_ptr<SyncProtocol> makeProtocol(
    ProtocolKind kind, const TaskSystem& system,
    const PriorityTables& tables);

}  // namespace mpcp
