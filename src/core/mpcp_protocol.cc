#include "core/mpcp_protocol.h"

#include "common/check.h"
#include "common/strf.h"

namespace mpcp {

MpcpProtocol::MpcpProtocol(const TaskSystem& system,
                           const PriorityTables& tables)
    : system_(&system),
      tables_(&tables),
      local_(system, tables),
      global_(system.resources().size()) {
  // Enforce the base assumption: no nesting involving a global section
  // (Section 4.2). TaskSystem::build() already rejects this unless
  // allow_nested_global was set; re-check so MPCP cannot be run on a
  // system built for the nesting experiments.
  for (const Task& t : system.tasks()) {
    for (const CriticalSection& cs : t.sections) {
      if (cs.parent < 0) continue;
      const CriticalSection& outer =
          t.sections[static_cast<std::size_t>(cs.parent)];
      if (system.isGlobal(cs.resource) || system.isGlobal(outer.resource)) {
        throw ConfigError(strf(
            "MPCP forbids nested global critical sections (", t.name, ": ",
            outer.resource, " encloses ", cs.resource,
            "); collapse them into a group lock"));
      }
    }
  }
  // A task can have at most a handful of live jobs at once (overrunning
  // releases); 2x the task count covers every queue's worst case.
  reserveSemQueues(global_, 2 * system.tasks().size());
}

void MpcpProtocol::attach(Engine& engine) {
  SyncProtocol::attach(engine);
  local_.attach(engine);
}

LockOutcome MpcpProtocol::onLock(Job& j, ResourceId r) {
  if (!system_->isGlobal(r)) {
    return local_.onLock(j, r);  // rule 2: uniprocessor PCP
  }

  SemState& s = global_[static_cast<std::size_t>(r.value())];
  if (s.holder == &j) return LockOutcome::kGranted;  // granted via handoff
  if (s.holder == nullptr) {
    // Rule 5: atomic acquisition; rule 3: fixed gcs priority on entry.
    s.holder = &j;
    engine_->noteGlobalHolder(r, &j);
    j.elevated = tables_->gcsPriority(r, j.host);
    engine_->notePriorityChanged(j);
    engine_->emit({.kind = Ev::kGcsEnter, .job = j.id, .processor = j.host,
                   .resource = r, .priority = j.elevated});
    return LockOutcome::kGranted;
  }
  // Rule 6: suspend in the priority-ordered queue, keyed by the job's
  // normal assigned priority.
  s.queue.push(&j, j.base);
  engine_->parkWaiting(j, r, s.holder->id);
  return LockOutcome::kWaiting;
}

void MpcpProtocol::onUnlock(Job& j, ResourceId r) {
  if (!system_->isGlobal(r)) {
    local_.onUnlock(j, r);
    return;
  }

  SemState& s = global_[static_cast<std::size_t>(r.value())];
  MPCP_CHECK(s.holder == &j, j.id << " releasing " << r << " it does not hold");

  // Leaving the gcs: back to the normal band (no nesting, so no other
  // global semaphore can still be held).
  j.elevated = kPriorityFloor;
  engine_->notePriorityChanged(j);
  engine_->emit({.kind = Ev::kGcsExit, .job = j.id, .processor = j.current,
                 .resource = r, .priority = j.base});

  if (s.queue.empty()) {
    s.holder = nullptr;
    engine_->noteGlobalHolder(r, nullptr);
    engine_->emit({.kind = Ev::kUnlock, .job = j.id, .processor = j.current,
                   .resource = r});
    return;
  }
  // Rule 7: direct handoff to the highest-priority waiter; it becomes
  // eligible on its host processor at its gcs priority immediately (it
  // must be able to preempt the moment it is signalled).
  Job* next = s.queue.pop();
  s.holder = next;
  engine_->noteGlobalHolder(r, next);
  next->elevated = tables_->gcsPriority(r, next->host);
  engine_->counters().res(r).handoffs++;
  engine_->emit({.kind = Ev::kHandoff, .job = j.id, .processor = j.current,
                 .resource = r, .other = next->id});
  engine_->emit({.kind = Ev::kGcsEnter, .job = next->id,
                 .processor = next->host, .resource = r,
                 .priority = next->elevated});
  engine_->wake(*next);
}

void MpcpProtocol::onJobFinished(Job& j) { local_.onJobFinished(j); }

}  // namespace mpcp
