// End-to-end schedulability pipeline: task system -> protocol-specific
// blocking bounds -> Theorem 3 / RTA verdicts. This is the API a system
// designer calls to answer "will this configuration meet its deadlines
// under protocol X?".
#pragma once

#include <vector>

#include "analysis/blocking_dpcp.h"
#include "analysis/blocking_spin.h"
#include "analysis/schedulability.h"
#include "core/blocking.h"
#include "core/hybrid_blocking.h"
#include "core/protocol_factory.h"
#include "model/task_system.h"

namespace mpcp {

struct AnalyzerOptions {
  BlockingOptions mpcp;       ///< MPCP factor options
  DpcpBlockingOptions dpcp;   ///< DPCP factor options
  SpinBlockingOptions spin;   ///< spin-fifo / spin-prio factor options
};

/// Everything the analysis produced for one (system, protocol) pair.
struct ProtocolAnalysis {
  ProtocolKind kind = ProtocolKind::kMpcp;
  std::vector<Duration> blocking;  ///< B_i per task
  std::vector<Duration> jitter;    ///< remote-suspension jitter per task
  SchedulabilityReport report;     ///< Theorem 3 + RTA verdicts
};

/// Supported kinds: kPcp (no globals), kMpcp, kDpcp, kHybrid (under its
/// canonical policy), kSpinFifo, kSpinPrio. Throws ConfigError for
/// protocols with no bounded-blocking analysis (none/PIP on
/// multiprocessors — the point of the paper is that no bound exists).
[[nodiscard]] ProtocolAnalysis analyzeUnder(ProtocolKind kind,
                                            const TaskSystem& system,
                                            const AnalyzerOptions& options = {});

/// Analysis for the hybrid protocol (the conclusion's mixed variant):
/// per-resource shared-memory/message-based policies.
[[nodiscard]] ProtocolAnalysis analyzeHybrid(const TaskSystem& system,
                                             const HybridPolicy& policy,
                                             const AnalyzerOptions& options = {});

}  // namespace mpcp
