// Hybrid shared-memory / message-based protocol — the variation the
// paper's conclusion proposes: "the shared memory and message-based
// protocols can be mixed to reduce critical blocking factors and/or
// support nested critical sections."
//
// Each *global* resource carries a policy:
//   kSharedMemory — MPCP handling: acquired in place, gcs at the fixed
//                   P_G + max(remote user) priority on the job's host;
//   kMessageBased — DPCP handling: the critical section migrates to the
//                   resource's synchronization processor and runs at the
//                   full global ceiling there.
// Local resources always use the uniprocessor PCP.
//
// Why mix? A message-based resource's gcs's leave the users' processors,
// deleting their factor-5 interference there (lower-priority local gcs's
// preempting normal code) and concentrating contention on a processor
// that can be dedicated; shared-memory resources avoid the agent
// funnelling and the full-ceiling pessimism. The hybrid ablation bench
// (bench/hybrid_ablation) quantifies the trade.
//
// Nesting: sections on shared-memory-policy resources must be flat (as
// under MPCP); message-based sections may nest among themselves when
// their resources share a sync processor (as under DPCP). Mixed-policy
// nesting is rejected.
#pragma once

#include <vector>

#include "analysis/ceilings.h"
#include "protocols/local_pcp.h"
#include "protocols/sem_state.h"
#include "sim/protocol.h"

namespace mpcp {

enum class GlobalPolicy {
  kSharedMemory,  ///< MPCP-style in-place gcs
  kMessageBased,  ///< DPCP-style remote agent
};

/// Per-resource policy map (entries for local resources are ignored).
class HybridPolicy {
 public:
  HybridPolicy() = default;
  explicit HybridPolicy(std::vector<GlobalPolicy> per_resource)
      : per_resource_(std::move(per_resource)) {}

  /// Every global resource shared-memory (== pure MPCP).
  static HybridPolicy allShared(const TaskSystem& system);
  /// Every global resource message-based (== pure DPCP).
  static HybridPolicy allMessage(const TaskSystem& system);

  [[nodiscard]] GlobalPolicy of(ResourceId r) const;
  void set(ResourceId r, GlobalPolicy policy);

 private:
  std::vector<GlobalPolicy> per_resource_;
};

class HybridProtocol final : public SyncProtocol {
 public:
  /// Throws ConfigError on policy-incompatible nesting (see above).
  HybridProtocol(const TaskSystem& system, const PriorityTables& tables,
                 HybridPolicy policy);

  void attach(Engine& engine) override;
  LockOutcome onLock(Job& j, ResourceId r) override;
  void onUnlock(Job& j, ResourceId r) override;
  void onJobFinished(Job& j) override;
  [[nodiscard]] const char* name() const override { return "hybrid"; }

 private:
  [[nodiscard]] Priority elevationFor(const Job& j, ResourceId r) const;

  const TaskSystem* system_;
  const PriorityTables* tables_;
  HybridPolicy policy_;
  LocalPcp local_;
  std::vector<SemState> global_;
};

}  // namespace mpcp
