// Worst-case blocking bounds for the hybrid protocol, built by combining
// the MPCP factors (Section 5.1) for shared-memory-policy resources with
// the DPCP-style agent terms for message-based-policy resources:
//
//   F1   local blocking                          (as MPCP F1)
//   F2'  queue-head wait per access: shared-mode semaphores charge the
//        longest lower-priority *remote* gcs (host-local ones are F5's),
//        message-mode semaphores the longest lower-priority gcs anywhere
//   F3'  higher-priority interference on shared semaphores, excluding
//        host-local tasks' gcs's on shared-memory-mode semaphores (those
//        are ordinary preemption, as in MPCP F3)
//   F4'  blocking-processor preemption of shared-mode direct blockers by
//        sections that *execute* on that processor with higher elevation
//   D3'  agent interference on each sync processor the task visits
//        (message-mode sections only)
//   D4'  message-mode gcs's of other tasks whose sync processor is the
//        task's own host
//   deferred-execution penalty (same form as MPCP/DPCP)
//
// Pure policies recover the pure analyses in structure; the ablation
// bench checks hybridBlocking(allShared) tracks the MPCP bound and that
// moving a hot resource to message mode trades F5/F2' for D3'/D4'.
#pragma once

#include <vector>

#include "analysis/ceilings.h"
#include "core/blocking.h"
#include "core/hybrid_protocol.h"
#include "model/task_system.h"

namespace mpcp {

struct HybridBlockingBreakdown {
  Duration local_lower_cs = 0;      ///< F1
  Duration lower_gcs_queue = 0;     ///< F2'
  Duration higher_gcs_remote = 0;   ///< F3'
  Duration blocking_proc_gcs = 0;   ///< F4'
  Duration local_lower_gcs = 0;     ///< F5' (shared-mode sections only)
  Duration agent_interference = 0;  ///< D3'
  Duration host_agent_load = 0;     ///< D4'
  Duration deferred_execution = 0;

  [[nodiscard]] Duration total() const {
    return local_lower_cs + lower_gcs_queue + higher_gcs_remote +
           blocking_proc_gcs + local_lower_gcs + agent_interference +
           host_agent_load + deferred_execution;
  }
  [[nodiscard]] Duration remoteSuspension() const {
    return lower_gcs_queue + higher_gcs_remote + blocking_proc_gcs +
           agent_interference;
  }
};

[[nodiscard]] std::vector<HybridBlockingBreakdown> hybridBlocking(
    const TaskSystem& system, const PriorityTables& tables,
    const HybridPolicy& policy, BlockingOptions options = {});

}  // namespace mpcp
