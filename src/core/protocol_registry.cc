#include "core/protocol_registry.h"

#include <utility>

#include "common/check.h"
#include "core/mpcp_protocol.h"
#include "protocols/dpcp.h"
#include "protocols/none.h"
#include "protocols/pcp.h"
#include "protocols/pip.h"
#include "protocols/spin.h"

namespace mpcp {

namespace {

template <typename T, typename... Args>
std::unique_ptr<SyncProtocol> make(Args&&... args) {
  return std::make_unique<T>(std::forward<Args>(args)...);
}

}  // namespace

const std::vector<ProtocolSpec>& protocolRegistry() {
  // Canonical order: the original fuzz order (none, none-prio, pip, pcp,
  // mpcp, dpcp, hybrid) with later additions appended — see the header's
  // note on corpus stability before editing.
  static const std::vector<ProtocolSpec> kRegistry = {
      {ProtocolKind::kNone, "none",
       "plain semaphores, FIFO queues, no priority management",
       /*analyzable=*/false, /*suspension_based=*/true,
       [](const TaskSystem& s, const PriorityTables&) {
         return make<NoProtocol>(s, QueueOrder::kFifo);
       }},
      {ProtocolKind::kNonePrio, "none-prio",
       "plain semaphores with priority-ordered queues",
       /*analyzable=*/false, /*suspension_based=*/true,
       [](const TaskSystem& s, const PriorityTables&) {
         return make<NoProtocol>(s, QueueOrder::kPriority);
       }},
      {ProtocolKind::kPip, "pip",
       "priority inheritance across processors (unbounded remote blocking)",
       /*analyzable=*/false, /*suspension_based=*/true,
       [](const TaskSystem& s, const PriorityTables&) {
         return make<PipProtocol>(s);
       }},
      {ProtocolKind::kPcp, "pcp",
       "uniprocessor priority ceiling protocol (rejects global resources)",
       /*analyzable=*/true, /*suspension_based=*/true,
       [](const TaskSystem& s, const PriorityTables& t) {
         return make<PcpProtocol>(s, t);
       }},
      {ProtocolKind::kMpcp, "mpcp",
       "the paper's shared-memory multiprocessor priority ceiling protocol",
       /*analyzable=*/true, /*suspension_based=*/true,
       [](const TaskSystem& s, const PriorityTables& t) {
         return make<MpcpProtocol>(s, t);
       }},
      {ProtocolKind::kDpcp, "dpcp",
       "message-based distributed priority ceiling baseline [8]",
       /*analyzable=*/true, /*suspension_based=*/true,
       [](const TaskSystem& s, const PriorityTables& t) {
         return make<DpcpProtocol>(s, t);
       }},
      {ProtocolKind::kHybrid, "hybrid",
       "per-resource MPCP/DPCP mix (canonical id-parity policy)",
       /*analyzable=*/true, /*suspension_based=*/true,
       [](const TaskSystem& s, const PriorityTables& t) {
         return make<HybridProtocol>(s, t, defaultHybridPolicy(s));
       }},
      {ProtocolKind::kSpinFifo, "spin-fifo",
       "MSRP-style non-preemptive FIFO spin locks",
       /*analyzable=*/true, /*suspension_based=*/false,
       [](const TaskSystem& s, const PriorityTables& t) {
         return make<SpinProtocol>(s, t, SpinOrder::kFifo);
       }},
      {ProtocolKind::kSpinPrio, "spin-prio",
       "non-preemptive priority-ordered spin locks",
       /*analyzable=*/true, /*suspension_based=*/false,
       [](const TaskSystem& s, const PriorityTables& t) {
         return make<SpinProtocol>(s, t, SpinOrder::kPriority);
       }},
  };
  return kRegistry;
}

const ProtocolSpec& protocolSpec(ProtocolKind kind) {
  for (const ProtocolSpec& spec : protocolRegistry()) {
    if (spec.kind == kind) return spec;
  }
  throw ConfigError("unregistered protocol kind " +
                    std::to_string(static_cast<int>(kind)));
}

const ProtocolSpec* findProtocol(std::string_view name) {
  for (const ProtocolSpec& spec : protocolRegistry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

ProtocolKind protocolKindFromName(const std::string& name) {
  if (const ProtocolSpec* spec = findProtocol(name)) return spec->kind;
  throw ConfigError("unknown protocol '" + name +
                    "' (known: " + knownProtocolNames() + ")");
}

const std::vector<std::string>& protocolNameList() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    names.reserve(protocolRegistry().size());
    for (const ProtocolSpec& spec : protocolRegistry()) {
      names.emplace_back(spec.name);
    }
    return names;
  }();
  return kNames;
}

std::string knownProtocolNames() {
  std::string out;
  for (const ProtocolSpec& spec : protocolRegistry()) {
    if (!out.empty()) out += ", ";
    out += spec.name;
  }
  return out;
}

HybridPolicy defaultHybridPolicy(const TaskSystem& system) {
  HybridPolicy policy = HybridPolicy::allShared(system);
  for (const ResourceInfo& r : system.resources()) {
    if (r.scope == ResourceScope::kGlobal && r.id.value() % 2 == 1) {
      policy.set(r.id, GlobalPolicy::kMessageBased);
    }
  }
  return policy;
}

}  // namespace mpcp
